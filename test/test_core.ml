module Xml = Txq_xml.Xml
module Parse = Txq_xml.Parse
module Print = Txq_xml.Print
module Vnode = Txq_vxml.Vnode
module Eid = Txq_vxml.Eid
module Timestamp = Txq_temporal.Timestamp
module Interval = Txq_temporal.Interval
open Txq_db
open Txq_core

let parse = Parse.parse_exn
let ts = Timestamp.of_string
let url = "guide.com/restaurants.xml"

(* Figure 1 timeline:
   01/01/2001  v0: Napoli 15
   15/01/2001  v1: Napoli 15, Akropolis 13
   31/01/2001  v2: Napoli 18, Akropolis 13 *)
let fig1_v0 =
  parse "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>"

let fig1_v1 =
  parse
    "<guide><restaurant><name>Napoli</name><price>15</price></restaurant><restaurant><name>Akropolis</name><price>13</price></restaurant></guide>"

let fig1_v2 =
  parse
    "<guide><restaurant><name>Napoli</name><price>18</price></restaurant><restaurant><name>Akropolis</name><price>13</price></restaurant></guide>"

let fig1_db ?config () =
  let db = Db.create ?config () in
  let id = Db.insert_document db ~url ~ts:(ts "01/01/2001") fig1_v0 in
  ignore (Db.update_document db ~url ~ts:(ts "15/01/2001") fig1_v1);
  ignore (Db.update_document db ~url ~ts:(ts "31/01/2001") fig1_v2);
  (db, id)

let restaurant_pattern = Pattern.of_path_exn "/guide/restaurant"
let napoli_pattern = Pattern.of_path_exn ~value:"Napoli" "/guide/restaurant/name"

let names db bindings =
  (* resolve each binding to the restaurant name at the binding's earliest
     valid instant *)
  List.filter_map
    (fun teid ->
      match Reconstruct_op.reconstruct db teid with
      | Some tree -> (
        match Vnode.children tree with
        | name :: _ -> Some (Vnode.text_content name)
        | [] -> None)
      | None -> None)
    (Scan.to_teids db bindings)

(* --- Vrange ------------------------------------------------------------ *)

let test_vrange () =
  let open Vrange in
  Alcotest.(check (list (pair int int))) "of_list merges"
    [(0, 5); (7, 9)]
    (to_list (of_list [(3, 5); (0, 3); (7, 8); (8, 9); (4, 4)]));
  Alcotest.(check (list (pair int int))) "inter"
    [(2, 3); (7, 8)]
    (to_list (inter (of_list [(0, 3); (7, 9)]) (of_list [(2, 8)])));
  Alcotest.(check bool) "mem" true (mem 7 (of_list [(7, 9)]));
  Alcotest.(check bool) "mem upper open" false (mem 9 (of_list [(7, 9)]));
  Alcotest.(check int) "spans" 5 (spans (of_list [(0, 3); (7, 9)]))

let test_vrange_helpers () =
  let open Vrange in
  Alcotest.(check (list (pair int int))) "coalesce merges adjacency across sets"
    [ (0, 6); (8, 10) ]
    (to_list
       (coalesce
          [ of_list [ (0, 2); (8, 10) ]; of_list [ (2, 4) ]; of_list [ (4, 6) ] ]));
  Alcotest.(check (list (pair int int))) "diff punches a hole"
    [ (0, 2); (5, 9) ]
    (to_list (diff (of_list [ (0, 9) ]) (of_list [ (2, 5) ])));
  Alcotest.(check (list (pair int int))) "diff is empty on containment" []
    (to_list (diff (of_list [ (2, 5) ]) (of_list [ (0, 9) ])));
  Alcotest.(check (list int)) "split_points are sorted distinct endpoints"
    [ 0; 2; 5; 9 ]
    (split_points [ of_list [ (0, 5) ]; of_list [ (2, 9) ]; of_list [ (5, 9) ] ])

(* Regression: the open-ended arm ([hi = max_int], "until changed") must
   survive interval difference without endpoint arithmetic — a [b + 1]
   encoding would overflow on the sentinel. *)
let test_vrange_open_ended () =
  let open Vrange in
  Alcotest.(check (list (pair int int))) "open-ended minuend keeps its tail"
    [ (0, 2); (5, max_int) ]
    (to_list (diff (of_list [ (0, max_int) ]) (of_list [ (2, 5) ])));
  Alcotest.(check (list (pair int int))) "open-ended subtrahend truncates"
    [ (0, 2) ]
    (to_list (diff (of_list [ (0, 5); (7, max_int) ]) (of_list [ (2, max_int) ])));
  Alcotest.(check (list (pair int int))) "open minus open cancels" []
    (to_list (diff (of_list [ (3, max_int) ]) (of_list [ (0, max_int) ])));
  Alcotest.(check (list int)) "split_points keeps the sentinel"
    [ 1; 4; max_int ]
    (split_points [ of_list [ (1, 4) ]; of_list [ (4, max_int) ] ])

let arb_vrange =
  (* small dense ranges so operands collide, with an occasional
     open-ended arm *)
  QCheck.map
    (fun (rs, open_from) ->
      let rs = List.map (fun (a, w) -> (a, a + 1 + w)) rs in
      let rs =
        match open_from with None -> rs | Some a -> (a, max_int) :: rs
      in
      Vrange.of_list rs)
    QCheck.(
      pair
        (small_list (pair (int_bound 20) (int_bound 4)))
        (option (int_bound 20)))

let prop_vrange_diff_pointwise =
  QCheck.Test.make ~count:300 ~name:"diff/coalesce pointwise semantics"
    QCheck.(pair arb_vrange arb_vrange)
    (fun (a, b) ->
      let d = Vrange.diff a b in
      let u = Vrange.coalesce [ a; b ] in
      List.for_all
        (fun x ->
          Vrange.mem x d = (Vrange.mem x a && not (Vrange.mem x b))
          && Vrange.mem x u = (Vrange.mem x a || Vrange.mem x b))
        (List.init 30 Fun.id @ [ 1000; max_int - 1 ]))

(* --- Pattern ------------------------------------------------------------ *)

let test_pattern_of_path () =
  let p = Pattern.of_path_exn ~value:"Napoli" "/guide//restaurant/name" in
  Alcotest.(check string) "shape" "/guide(//restaurant(/name!(/~\"Napoli\")))"
    (Pattern.to_string p);
  Alcotest.(check int) "single output" 1 (Pattern.output_count p)

let test_pattern_validate () =
  (match Pattern.validate (Pattern.tag "a" []) with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "no output should be invalid");
  match Pattern.of_path "/a/*/b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wildcards should be rejected"

(* --- PatternScan (current) ---------------------------------------------- *)

let test_pattern_scan_current () =
  let db, _ = fig1_db () in
  let bindings = Scan.pattern_scan db restaurant_pattern in
  Alcotest.(check int) "two current restaurants" 2 (List.length bindings);
  let current_names = List.sort String.compare (names db bindings) in
  Alcotest.(check (list string)) "names" ["Akropolis"; "Napoli"] current_names

let test_pattern_scan_word_filter () =
  let db, _ = fig1_db () in
  let bindings = Scan.pattern_scan db napoli_pattern in
  Alcotest.(check int) "one match" 1 (List.length bindings)

let test_pattern_scan_ignores_deleted () =
  let db, _ = fig1_db () in
  Db.delete_document db ~url ~ts:(ts "01/02/2001") ();
  Alcotest.(check int) "deleted doc has no current matches" 0
    (List.length (Scan.pattern_scan db restaurant_pattern))

(* --- Q1: snapshot ------------------------------------------------------- *)

let test_q1_snapshot () =
  let db, _ = fig1_db () in
  (* Q1: list all restaurants as of 26/01/2001 (falls in v1) *)
  let bindings = Scan.tpattern_scan db restaurant_pattern (ts "26/01/2001") in
  Alcotest.(check int) "two restaurants at 26/01" 2 (List.length bindings);
  let at_names = List.sort String.compare (names db bindings) in
  Alcotest.(check (list string)) "names" ["Akropolis"; "Napoli"] at_names;
  (* price of Napoli at that date must be 15 (not the later 18) *)
  let napoli = Scan.tpattern_scan db napoli_pattern (ts "26/01/2001") in
  match Scan.to_teids db napoli with
  | [teid] ->
    let doc = teid.Eid.Temporal.eid.Eid.doc in
    let tree = Option.get (Db.reconstruct_at db doc (ts "26/01/2001")) |> snd in
    let restaurants = Vnode.children tree in
    let prices =
      List.filter_map
        (fun r ->
          match Vnode.children r with
          | [name; price] when String.equal (Vnode.text_content name) "Napoli" ->
            Some (Vnode.text_content price)
          | _ -> None)
        restaurants
    in
    Alcotest.(check (list string)) "Napoli price at 26/01" ["15"] prices
  | other -> Alcotest.failf "expected one Napoli TEID, got %d" (List.length other)

let test_snapshot_before_creation () =
  let db, _ = fig1_db () in
  Alcotest.(check int) "no matches before the db existed" 0
    (List.length (Scan.tpattern_scan db restaurant_pattern (ts "01/06/2000")))

let test_snapshot_only_akropolis_era () =
  let db, _ = fig1_db () in
  (* 05/01/2001: only Napoli exists *)
  let bindings = Scan.tpattern_scan db restaurant_pattern (ts "05/01/2001") in
  Alcotest.(check (list string)) "only Napoli" ["Napoli"] (names db bindings)

(* --- Q2: aggregate without reconstruction -------------------------------- *)

let test_q2_count_no_reconstruction () =
  let db, _ = fig1_db () in
  Db.reset_io db;
  let bindings = Scan.tpattern_scan db restaurant_pattern (ts "26/01/2001") in
  Alcotest.(check int) "count" 2 (Aggregate.count bindings);
  Alcotest.(check int) "no deltas read" 0 (Db.stats db).Db.deltas_read;
  Alcotest.(check int) "no reconstructions" 0 (Db.stats db).Db.reconstructions

(* --- Q3: history (TPatternScanAll) --------------------------------------- *)

let test_q3_price_history () =
  let db, _ = fig1_db () in
  (* Q3: price history of Napoli, via TPatternScanAll on the name pattern
     then navigating to prices; here we scan prices of the Napoli
     restaurant via the restaurant pattern with name word *)
  let bindings = Scan.tpattern_scan_all db napoli_pattern in
  (* the name element "Napoli" exists from v0 on, one binding covering all
     versions *)
  Alcotest.(check int) "one name binding" 1 (List.length bindings);
  let b = List.hd bindings in
  Alcotest.(check (list (pair int int))) "covers all versions" [(0, max_int)]
    (Vrange.to_list b.Scan.b_versions);
  (* price elements: the price text changed, so the word postings split *)
  let price_15 =
    Scan.tpattern_scan_all db
      (Pattern.of_path_exn ~value:"15" "/guide/restaurant/price")
  in
  let price_18 =
    Scan.tpattern_scan_all db
      (Pattern.of_path_exn ~value:"18" "/guide/restaurant/price")
  in
  (match price_15 with
   | [b] ->
     Alcotest.(check (list (pair int int))) "15 valid in v0..v1" [(0, 2)]
       (Vrange.to_list b.Scan.b_versions)
   | _ -> Alcotest.fail "expected one binding for price word 15");
  match price_18 with
  | [b] ->
    Alcotest.(check (list (pair int int))) "18 valid from v2" [(2, max_int)]
      (Vrange.to_list b.Scan.b_versions)
  | _ -> Alcotest.fail "expected one binding for price word 18"

let test_scan_all_finds_past_only_matches () =
  let db, _ = fig1_db () in
  (* nothing matches "15" in the current version, but history scan finds it *)
  let p = Pattern.of_path_exn ~value:"15" "/guide/restaurant/price" in
  Alcotest.(check int) "current scan misses" 0
    (List.length (Scan.pattern_scan db p));
  Alcotest.(check int) "history scan hits" 1
    (List.length (Scan.tpattern_scan_all db p))

let test_binding_intervals () =
  let db, _ = fig1_db () in
  let p = Pattern.of_path_exn ~value:"15" "/guide/restaurant/price" in
  match Scan.tpattern_scan_all db p with
  | [b] ->
    (match Scan.binding_intervals db b with
     | [iv] ->
       Alcotest.(check string) "timestamp interval"
         "[01/01/2001, 31/01/2001)" (Interval.to_string iv)
     | other -> Alcotest.failf "expected one interval, got %d" (List.length other))
  | _ -> Alcotest.fail "expected one binding"

(* --- descendant axis and deep structure ---------------------------------- *)

let test_descendant_axis () =
  let db = Db.create () in
  ignore
    (Db.insert_document db ~url:"a" ~ts:(ts "01/01/2001")
       (parse
          "<doc><sec><sub><price>9</price></sub></sec><price>11</price></doc>"));
  Alcotest.(check int) "//price finds both" 2
    (List.length (Scan.pattern_scan db (Pattern.of_path_exn "//price")));
  Alcotest.(check int) "/doc/price finds one" 1
    (List.length (Scan.pattern_scan db (Pattern.of_path_exn "/doc/price")));
  Alcotest.(check int) "/doc//price finds both" 2
    (List.length (Scan.pattern_scan db (Pattern.of_path_exn "/doc//price")));
  (* word with descendant axis *)
  let p =
    Pattern.tag ~axis:Pattern.Descendant ~output:true "sec"
      [Pattern.word ~axis:Pattern.Descendant "9"]
  in
  Alcotest.(check int) "word below sec" 1 (List.length (Scan.pattern_scan db p));
  let p_direct =
    Pattern.tag ~axis:Pattern.Descendant ~output:true "sec" [Pattern.word "9"]
  in
  Alcotest.(check int) "word not directly in sec" 0
    (List.length (Scan.pattern_scan db p_direct))

let test_output_below_root () =
  let db, _ = fig1_db () in
  (* output at name level, pattern anchored at guide *)
  let p =
    Pattern.tag "guide"
      [Pattern.tag "restaurant" [Pattern.tag ~output:true "name" []]]
  in
  let bindings = Scan.pattern_scan db p in
  Alcotest.(check int) "two names" 2 (List.length bindings)

(* --- DocHistory / ElementHistory ----------------------------------------- *)

let test_doc_history () =
  let db, id = fig1_db () in
  let hist =
    History.doc_history db id ~t1:(ts "01/01/2001") ~t2:(ts "01/03/2001")
  in
  Alcotest.(check (list int)) "most recent first" [2; 1; 0]
    (List.map (fun dv -> dv.History.dv_version) hist);
  (* window clipping *)
  let clipped =
    History.doc_history db id ~t1:(ts "10/01/2001") ~t2:(ts "20/01/2001")
  in
  Alcotest.(check (list int)) "only v0 and v1 overlap" [1; 0]
    (List.map (fun dv -> dv.History.dv_version) clipped);
  (match clipped with
   | [v1; v0] ->
     Alcotest.(check string) "v1 clipped right" "[15/01/2001, 20/01/2001)"
       (Interval.to_string v1.History.dv_interval);
     Alcotest.(check string) "v0 clipped left" "[10/01/2001, 15/01/2001)"
       (Interval.to_string v0.History.dv_interval)
   | _ -> Alcotest.fail "expected two clipped versions");
  Alcotest.(check int) "empty window" 0
    (List.length
       (History.doc_history db id ~t1:(ts "01/01/2001") ~t2:(ts "01/01/2001")))

let test_element_history () =
  let db, id = fig1_db () in
  (* find Napoli's price element eid *)
  let v2 = Db.reconstruct db id 2 in
  let price_eid =
    match Vnode.children v2 with
    | napoli :: _ -> (
      match Vnode.children napoli with
      | [_name; price] -> Eid.make ~doc:id ~xid:(Vnode.xid price)
      | _ -> Alcotest.fail "unexpected shape")
    | [] -> Alcotest.fail "no restaurants"
  in
  let hist =
    History.element_history db price_eid ~t1:(ts "01/01/2001")
      ~t2:(ts "01/03/2001") ()
  in
  Alcotest.(check (list string)) "price per version, recent first"
    ["18"; "15"; "15"]
    (List.map (fun ev -> Vnode.text_content ev.History.ev_tree) hist);
  let collapsed =
    History.element_history db price_eid ~t1:(ts "01/01/2001")
      ~t2:(ts "01/03/2001") ~distinct:true ()
  in
  Alcotest.(check (list string)) "distinct states" ["18"; "15"]
    (List.map (fun ev -> Vnode.text_content ev.History.ev_tree) collapsed);
  (match collapsed with
   | [_; v15] ->
     Alcotest.(check string) "15 spans v0+v1" "[01/01/2001, 31/01/2001)"
       (Interval.to_string v15.History.ev_interval)
   | _ -> Alcotest.fail "expected two distinct states")

(* The paper's naive ElementHistory — DocHistory, then reconstruct every
   version with a fresh cache-free chain walk ([Docstore.reconstruct]) and
   filter out the subtree.  The production path is the single backward
   sweep; this oracle is kept in the tests so the differential below stays
   meaningful. *)
let naive_element_history db eid ~t1 ~t2 ~distinct =
  let d = Db.doc db eid.Eid.doc in
  let with_trees =
    List.filter_map
      (fun dv ->
        let tree, _ = Docstore.reconstruct d dv.History.dv_version in
        match Vnode.find tree eid.Eid.xid with
        | Some subtree ->
          Some
            {
              History.ev_teid =
                Eid.Temporal.make eid (Interval.start dv.History.dv_interval);
              ev_version = dv.History.dv_version;
              ev_interval = dv.History.dv_interval;
              ev_tree = subtree;
            }
        | None -> None)
      (History.doc_history db eid.Eid.doc ~t1 ~t2)
  in
  if not distinct then with_trees
  else
    (* collapse runs of consecutive versions with equal content *)
    let oldest_first = List.rev with_trees in
    let _, out =
      List.fold_left
        (fun (prev, acc) ev ->
          match prev with
          | Some p when Vnode.deep_equal p.History.ev_tree ev.History.ev_tree ->
            let merged =
              {
                p with
                History.ev_interval =
                  Interval.make
                    ~start:(Interval.start p.History.ev_interval)
                    ~stop:(Interval.stop ev.History.ev_interval);
              }
            in
            (Some merged, merged :: List.tl acc)
          | _ -> (Some ev, ev :: acc))
        (None, []) oldest_first
    in
    out

let test_element_history_sweep_agrees () =
  let db, id = fig1_db () in
  let v2 = Db.reconstruct db id 2 in
  let eids =
    (* every element of the current version plus the price elements *)
    List.map (fun xid -> Eid.make ~doc:id ~xid) (Txq_vxml.Vnode.xids v2)
  in
  List.iter
    (fun eid ->
      let naive =
        naive_element_history db eid ~t1:(ts "01/01/2001")
          ~t2:(ts "01/03/2001") ~distinct:true
      in
      let sweep =
        History.element_history_sweep db eid ~t1:(ts "01/01/2001")
          ~t2:(ts "01/03/2001") ()
      in
      Alcotest.(check int)
        (Printf.sprintf "same count for %s" (Eid.to_string eid))
        (List.length naive) (List.length sweep);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "same content" true
            (Vnode.deep_equal a.History.ev_tree b.History.ev_tree);
          Alcotest.(check string) "same interval"
            (Interval.to_string a.History.ev_interval)
            (Interval.to_string b.History.ev_interval))
        naive sweep)
    eids

let prop_sweep_equals_naive =
  QCheck.Test.make ~count:40
    ~name:"element_history (sweep) ≡ naive reconstruct-and-filter (random)"
    (Txq_test_support.Gen_xml.arb_history ~max_versions:7)
    (fun (doc0, versions) ->
      let db = Db.create () in
      let base = Timestamp.of_date ~day:1 ~month:1 ~year:2001 in
      let id = Db.insert_document db ~url:"u" ~ts:base doc0 in
      List.iteri
        (fun i v ->
          ignore
            (Db.update_document db ~url:"u"
               ~ts:(Timestamp.add base (Txq_temporal.Duration.days (i + 1)))
               v))
        versions;
      (* compare histories of every element that ever existed: union of all
         versions' xids *)
      let n = List.length versions + 1 in
      let all_xids =
        List.sort_uniq compare
          (List.concat_map
             (fun v -> Vnode.xids (Db.reconstruct db id v))
             (List.init n Fun.id))
      in
      let t1 = Timestamp.minus_infinity and t2 = Timestamp.plus_infinity in
      let same a b =
        List.length a = List.length b
        && List.for_all2
             (fun x y ->
               (* per-version entries must match byte-for-byte, XIDs
                  included: the sweep shares one tree across a run *)
               Vnode.equal_with_xids x.History.ev_tree y.History.ev_tree
               && Interval.equal x.History.ev_interval y.History.ev_interval
               && x.History.ev_version = y.History.ev_version)
             a b
      in
      List.for_all
        (fun xid ->
          let eid = Eid.make ~doc:id ~xid in
          same
            (naive_element_history db eid ~t1 ~t2 ~distinct:true)
            (History.element_history db eid ~t1 ~t2 ~distinct:true ())
          && same
               (naive_element_history db eid ~t1 ~t2 ~distinct:false)
               (History.element_history db eid ~t1 ~t2 ())
          && same
               (History.element_history db eid ~t1 ~t2 ~distinct:true ())
               (History.element_history_sweep db eid ~t1 ~t2 ()))
        all_xids)

let test_element_history_absent_element () =
  let db, id = fig1_db () in
  (* Akropolis restaurant does not exist in v0 *)
  let v2 = Db.reconstruct db id 2 in
  let akro_eid =
    List.find_map
      (fun r ->
        if String.equal (Vnode.text_content r) "Akropolis13" then
          Some (Eid.make ~doc:id ~xid:(Vnode.xid r))
        else None)
      (Vnode.children v2)
    |> Option.get
  in
  let hist =
    History.element_history db akro_eid ~t1:(ts "01/01/2001")
      ~t2:(ts "01/03/2001") ()
  in
  Alcotest.(check (list int)) "absent from v0" [2; 1]
    (List.map (fun ev -> ev.History.ev_version) hist)

(* --- CreTime / DelTime ---------------------------------------------------- *)

let akropolis_teid db id =
  let v2 = Db.reconstruct db id 2 in
  let akro =
    List.find
      (fun r -> String.equal (Vnode.text_content r) "Akropolis13")
      (Vnode.children v2)
  in
  Eid.Temporal.make (Eid.make ~doc:id ~xid:(Vnode.xid akro)) (ts "31/01/2001")

let test_cretime_strategies_agree () =
  let db, id = fig1_db () in
  let teid = akropolis_teid db id in
  let by_index = Lifetime.cre_time db ~strategy:`Index teid in
  let by_traverse = Lifetime.cre_time db ~strategy:`Traverse teid in
  Alcotest.(check (option string)) "index says 15/01" (Some "15/01/2001")
    (Option.map Timestamp.to_string by_index);
  Alcotest.(check (option string)) "traverse agrees" (Some "15/01/2001")
    (Option.map Timestamp.to_string by_traverse)

let test_cretime_of_original_element () =
  let db, id = fig1_db () in
  let v0 = Db.reconstruct db id 0 in
  let teid =
    Eid.Temporal.make (Eid.make ~doc:id ~xid:(Vnode.xid v0)) (ts "20/01/2001")
  in
  Alcotest.(check (option string)) "root created with the document"
    (Some "01/01/2001")
    (Option.map Timestamp.to_string (Lifetime.cre_time db ~strategy:`Traverse teid))

let test_deltime () =
  let db = Db.create () in
  let id =
    Db.insert_document db ~url:"d" ~ts:(ts "01/01/2001")
      (parse "<g><a>one</a><b>two</b></g>")
  in
  ignore
    (Db.update_document db ~url:"d" ~ts:(ts "10/01/2001")
       (parse "<g><b>two</b></g>"));
  let v0 = Db.reconstruct db id 0 in
  let a_elem = List.hd (Vnode.children v0) in
  let teid =
    Eid.Temporal.make (Eid.make ~doc:id ~xid:(Vnode.xid a_elem)) (ts "05/01/2001")
  in
  Alcotest.(check (option string)) "deleted on 10/01 (traverse)"
    (Some "10/01/2001")
    (Option.map Timestamp.to_string (Lifetime.del_time db ~strategy:`Traverse teid));
  Alcotest.(check (option string)) "deleted on 10/01 (index)"
    (Some "10/01/2001")
    (Option.map Timestamp.to_string (Lifetime.del_time db ~strategy:`Index teid));
  (* surviving element has no delete time *)
  let b_elem = List.nth (Vnode.children v0) 1 in
  let teid_b =
    Eid.Temporal.make (Eid.make ~doc:id ~xid:(Vnode.xid b_elem)) (ts "05/01/2001")
  in
  Alcotest.(check (option string)) "b alive" None
    (Option.map Timestamp.to_string (Lifetime.del_time db ~strategy:`Traverse teid_b))

let test_deltime_document_deletion () =
  let db = Db.create () in
  let id =
    Db.insert_document db ~url:"d" ~ts:(ts "01/01/2001") (parse "<g><a>x</a></g>")
  in
  Db.delete_document db ~url:"d" ~ts:(ts "20/01/2001") ();
  let v0 = Db.reconstruct db id 0 in
  let a_elem = List.hd (Vnode.children v0) in
  let teid =
    Eid.Temporal.make (Eid.make ~doc:id ~xid:(Vnode.xid a_elem)) (ts "05/01/2001")
  in
  (* "If the document is deleted, and the element existed in the last
     version, the delete time of the document is the delete time of the
     element" *)
  Alcotest.(check (option string)) "element dies with the document"
    (Some "20/01/2001")
    (Option.map Timestamp.to_string (Lifetime.del_time db ~strategy:`Traverse teid))

(* property: both CreTime/DelTime strategies agree on every element of
   random histories *)
let prop_lifetime_strategies_agree =
  QCheck.Test.make ~count:30 ~name:"cre/del time: traverse ≡ index (random)"
    (Txq_test_support.Gen_xml.arb_history ~max_versions:6)
    (fun (doc0, versions) ->
      let db = Db.create () in
      let base = Timestamp.of_date ~day:1 ~month:1 ~year:2001 in
      let id = Db.insert_document db ~url:"u" ~ts:base doc0 in
      List.iteri
        (fun i v ->
          ignore
            (Db.update_document db ~url:"u"
               ~ts:(Timestamp.add base (Txq_temporal.Duration.days (i + 1)))
               v))
        versions;
      let n = 1 + List.length versions in
      (* probe every element alive in every version, at that version's time *)
      List.for_all
        (fun v ->
          let probe = Timestamp.add base (Txq_temporal.Duration.days v) in
          let tree = Db.reconstruct db id v in
          List.for_all
            (fun xid ->
              let teid = Eid.Temporal.make (Eid.make ~doc:id ~xid) probe in
              let c1 = Lifetime.cre_time db ~strategy:`Traverse teid in
              let c2 = Lifetime.cre_time db ~strategy:`Index teid in
              let d1 = Lifetime.del_time db ~strategy:`Traverse teid in
              let d2 = Lifetime.del_time db ~strategy:`Index teid in
              c1 = c2 && d1 = d2)
            (Vnode.xids tree))
        (List.init n Fun.id))

(* --- navigation ------------------------------------------------------------ *)

let test_nav () =
  let db, id = fig1_db () in
  let v1 = Db.reconstruct db id 1 in
  let eid = Eid.make ~doc:id ~xid:(Vnode.xid v1) in
  let at t = Eid.Temporal.make eid (ts t) in
  let check_ts name expected got =
    Alcotest.(check (option string)) name expected (Option.map Timestamp.to_string got)
  in
  check_ts "previous of v1" (Some "01/01/2001") (Nav.previous_ts db (at "20/01/2001"));
  check_ts "previous of v0" None (Nav.previous_ts db (at "05/01/2001"));
  check_ts "next of v1" (Some "31/01/2001") (Nav.next_ts db (at "20/01/2001"));
  check_ts "next of current" None (Nav.next_ts db (at "01/02/2001"));
  check_ts "current" (Some "31/01/2001") (Nav.current_ts db eid);
  Db.delete_document db ~url ~ts:(ts "05/02/2001") ();
  check_ts "current of deleted doc" None (Nav.current_ts db eid)

(* --- Reconstruct / Diff ------------------------------------------------------ *)

let test_reconstruct_operator () =
  let db, id = fig1_db () in
  let v0 = Db.reconstruct db id 0 in
  let napoli = List.hd (Vnode.children v0) in
  let eid = Eid.make ~doc:id ~xid:(Vnode.xid napoli) in
  (match Reconstruct_op.reconstruct_xml db (Eid.Temporal.make eid (ts "05/01/2001")) with
   | Some xml ->
     Alcotest.(check string) "napoli v0"
       "<restaurant><name>Napoli</name><price>15</price></restaurant>"
       (Print.to_string xml)
   | None -> Alcotest.fail "expected subtree");
  (* at a time before the doc existed *)
  Alcotest.(check bool) "before creation" true
    (Reconstruct_op.reconstruct db (Eid.Temporal.make eid (ts "01/01/2000")) = None)

let test_diff_operator () =
  let db, id = fig1_db () in
  let v0 = Db.reconstruct db id 0 in
  let napoli = List.hd (Vnode.children v0) in
  let eid = Eid.make ~doc:id ~xid:(Vnode.xid napoli) in
  let t1 = Eid.Temporal.make eid (ts "05/01/2001") in
  let t2 = Eid.Temporal.make eid (ts "01/02/2001") in
  match Diff_op.diff db t1 t2 with
  | Error e -> Alcotest.fail e
  | Ok script ->
    (* the edit script is XML (closure) and contains exactly one update:
       the price text 15 -> 18 *)
    Alcotest.(check (option string)) "is a delta document" (Some "delta")
      (Xml.tag script);
    let updates = Txq_xml.Path.select (Txq_xml.Path.parse_exn "/delta/update") script in
    Alcotest.(check int) "one update op" 1 (List.length updates);
    let olds = Txq_xml.Path.select (Txq_xml.Path.parse_exn "//old") script in
    let news = Txq_xml.Path.select (Txq_xml.Path.parse_exn "//new") script in
    Alcotest.(check (list string)) "old value" ["15"] (List.map Xml.text_content olds);
    Alcotest.(check (list string)) "new value" ["18"] (List.map Xml.text_content news)

(* --- equality / similarity ---------------------------------------------------- *)

let test_equality_semantics () =
  let v tree =
    Vnode.of_xml (Txq_vxml.Xid.Gen.create ()) (parse tree)
  in
  let a = v "<restaurant><name>Napoli</name><price>15</price></restaurant>" in
  let b = v "<restaurant><name>Napoli</name><price>18</price></restaurant>" in
  Alcotest.(check bool) "deep differs" false (Equality.deep_equal a b);
  Alcotest.(check bool) "shallow equal" true (Equality.shallow_equal a b);
  Alcotest.(check bool) "similar" true (Equality.similar a b);
  let c = v "<restaurant><name>Golden Dragon</name><menu>dumplings</menu></restaurant>" in
  Alcotest.(check bool) "not similar" false (Equality.similar b c);
  Alcotest.(check bool) "similarity symmetric" true
    (Float.equal (Equality.similarity a c) (Equality.similarity c a))

let test_identity () =
  let db, id = fig1_db () in
  let v0 = Db.reconstruct db id 0 and v2 = Db.reconstruct db id 2 in
  let napoli_eid tree = Eid.make ~doc:id ~xid:(Vnode.xid (List.hd (Vnode.children tree))) in
  Alcotest.(check bool) "same EID across versions" true
    (Equality.identical (napoli_eid v0) (napoli_eid v2))

(* --- aggregates ----------------------------------------------------------------- *)

let test_count_versions () =
  let db, _ = fig1_db () in
  (* bounded matches: version spans count; open-ended ones are clipped to
     the document's version count (fig1 has 3 versions) *)
  let bindings =
    Scan.tpattern_scan_all db (Pattern.of_path_exn ~value:"15" "/guide/restaurant/price")
  in
  Alcotest.(check int) "15 spans two versions" 2
    (Aggregate.count_versions db bindings);
  let open_bindings = Scan.tpattern_scan_all db napoli_pattern in
  Alcotest.(check int) "open match spans all three versions" 3
    (Aggregate.count_versions db open_bindings)

(* Hand-computed oracle over synthetic version ranges, including the
   open-ended ([hi = max_int]) ones TPatternScanAll emits for matches
   still alive in the current version.  Regression: these used to count
   as a single version (the max_int sentinel collapsed to +1). *)
let test_count_versions_oracle () =
  let db, _ = fig1_db () in (* 3 versions *)
  let base =
    match Scan.tpattern_scan_all db napoli_pattern with
    | b :: _ -> b
    | [] -> Alcotest.fail "fig1 must bind Napoli"
  in
  let with_ranges rs = { base with Scan.b_versions = Vrange.of_list rs } in
  let count cases = Aggregate.count_versions db (List.map with_ranges cases) in
  (* bounded: plain span sums *)
  Alcotest.(check int) "bounded singleton" 1 (count [ [ (1, 2) ] ]);
  Alcotest.(check int) "bounded disjoint ranges" 2 (count [ [ (0, 1); (2, 3) ] ]);
  (* open ranges clip to the document's 3 versions *)
  Alcotest.(check int) "open from 0 = whole history" 3
    (count [ [ (0, max_int) ] ]);
  Alcotest.(check int) "open from 1" 2 (count [ [ (1, max_int) ] ]);
  (* mixed bounded + open within one binding *)
  Alcotest.(check int) "mixed [(0,1) ∪ [2,∞))" 2
    (count [ [ (0, 1); (2, max_int) ] ]);
  (* several bindings sum independently *)
  Alcotest.(check int) "sum across bindings" 4
    (count [ [ (0, 2) ]; [ (1, max_int) ] ]);
  (* a range past the end contributes nothing after clipping *)
  Alcotest.(check int) "past-the-end clipped away" 1
    (count [ [ (2, 3); (7, max_int) ] ])

let test_eid_printing () =
  let eid = Eid.make ~doc:3 ~xid:(Txq_vxml.Xid.of_int 7) in
  Alcotest.(check string) "eid" "d3#7" (Eid.to_string eid);
  Alcotest.(check string) "teid" "d3#7@26/01/2001"
    (Eid.Temporal.to_string (Eid.Temporal.make eid (ts "26/01/2001")))

let test_similarity_bounds () =
  let v s = Vnode.of_xml (Txq_vxml.Xid.Gen.create ()) (parse s) in
  let a = v "<r><name>Napoli</name></r>" in
  Alcotest.(check (float 0.0001)) "self-similarity" 1.0 (Equality.similarity a a);
  let b = v "<q><other>thing</other></q>" in
  Alcotest.(check (float 0.0001)) "disjoint" 0.0 (Equality.similarity a b);
  let s = Equality.similarity a (v "<r><name>Roma</name></r>") in
  Alcotest.(check bool) "partial in (0,1)" true (s > 0.0 && s < 1.0)

let test_aggregates () =
  let db, _ = fig1_db () in
  let prices = Pattern.of_path_exn "/guide/restaurant/price" in
  let teids = Scan.to_teids db (Scan.tpattern_scan db prices (ts "26/01/2001")) in
  Alcotest.(check (float 0.001)) "sum at 26/01" 28.0 (Aggregate.sum db teids);
  Alcotest.(check (option (float 0.001))) "avg" (Some 14.0) (Aggregate.avg db teids);
  Alcotest.(check (option (pair (float 0.001) (float 0.001)))) "min/max"
    (Some (13.0, 15.0))
    (Aggregate.min_max db teids);
  let now_teids = Scan.to_teids db (Scan.pattern_scan db prices) in
  Alcotest.(check (float 0.001)) "current sum" 31.0 (Aggregate.sum db now_teids)

(* --- property: snapshot scan ≡ brute force over reconstructed snapshot ----------- *)

(* property: the history scan is exactly the union of the per-version
   snapshot scans — "TPatternScanAll returns all matches for all versions"
   (Section 6.1) *)
let prop_scan_all_is_union_of_snapshots =
  QCheck.Test.make ~count:30
    ~name:"tpattern_scan_all ≡ union of tpattern_scan over versions"
    (Txq_test_support.Gen_xml.arb_history ~max_versions:6)
    (fun (doc0, versions) ->
      let db = Db.create () in
      let base = Timestamp.of_date ~day:1 ~month:1 ~year:2001 in
      ignore (Db.insert_document db ~url:"u" ~ts:base doc0);
      List.iteri
        (fun i v ->
          ignore
            (Db.update_document db ~url:"u"
               ~ts:(Timestamp.add base (Txq_temporal.Duration.days (i + 1)))
               v))
        versions;
      let n = 1 + List.length versions in
      List.for_all
        (fun tag ->
          let pattern = Pattern.of_path_exn ("//" ^ tag) in
          let all = Scan.tpattern_scan_all db pattern in
          (* key set of (doc, leaf xid, version) triples *)
          let expand bindings v =
            List.filter_map
              (fun b ->
                if Vrange.mem v b.Scan.b_versions then
                  Some (b.Scan.b_doc, Txq_vxml.Xidpath.leaf b.Scan.b_path, v)
                else None)
              bindings
          in
          let from_all =
            List.sort_uniq compare
              (List.concat_map (expand all) (List.init n Fun.id))
          in
          let from_snapshots =
            List.sort_uniq compare
              (List.concat_map
                 (fun v ->
                   let probe = Timestamp.add base (Txq_temporal.Duration.days v) in
                   List.filter_map
                     (fun b ->
                       Some (b.Scan.b_doc, Txq_vxml.Xidpath.leaf b.Scan.b_path, v))
                     (Scan.tpattern_scan db pattern probe))
                 (List.init n Fun.id))
          in
          from_all = from_snapshots)
        ["name"; "price"; "item"; "review"])

let prop_tpattern_scan_bruteforce =
  QCheck.Test.make ~count:40
    ~name:"tpattern_scan ≡ path query on reconstructed snapshot"
    (Txq_test_support.Gen_xml.arb_history ~max_versions:6)
    (fun (doc0, versions) ->
      let db = Db.create () in
      let base = Timestamp.of_date ~day:1 ~month:1 ~year:2001 in
      let id = Db.insert_document db ~url:"u" ~ts:base doc0 in
      List.iteri
        (fun i v ->
          ignore
            (Db.update_document db ~url:"u"
               ~ts:(Timestamp.add base (Txq_temporal.Duration.days (i + 1)))
               v))
        versions;
      let all = doc0 :: versions in
      List.for_all
        (fun (v, _reference) ->
          let probe = Timestamp.add base (Txq_temporal.Duration.days v) in
          let snapshot = Vnode.to_xml (Db.reconstruct db id v) in
          (* compare //name counts: pattern engine vs path evaluation *)
          List.for_all
            (fun tag ->
              let pattern = Pattern.of_path_exn ("//" ^ tag) in
              let engine = List.length (Scan.tpattern_scan db pattern probe) in
              let brute =
                List.length
                  (Txq_xml.Path.select (Txq_xml.Path.parse_exn ("//" ^ tag)) snapshot)
              in
              engine = brute)
            ["name"; "price"; "item"; "doc"; "review"])
        (List.mapi (fun i r -> (i, r)) all))

(* property: the document-partitioned domain pool is invisible — every scan
   operator returns structurally identical bindings at domains ∈ {1, 2, 4},
   over a database whose FTI is forced through the frozen-segment path *)
let prop_scan_domains_deterministic =
  QCheck.Test.make ~count:15
    ~name:"scan: domains=N ≡ domains=1 (frozen segments)"
    QCheck.(
      pair
        (Txq_test_support.Gen_xml.arb_history ~max_versions:4)
        (Txq_test_support.Gen_xml.arb_history ~max_versions:4))
    (fun (hist0, hist1) ->
      let config =
        { Txq_db.Config.default with Txq_db.Config.fti_segment_postings = 16 }
      in
      let db = Db.create ~config () in
      let base = Timestamp.of_date ~day:1 ~month:1 ~year:2001 in
      (* transaction time is monotone db-wide: give each document its own
         later window *)
      List.iteri
        (fun d (doc0, versions) ->
          let url = Printf.sprintf "u%d" d in
          let at i =
            Timestamp.add base (Txq_temporal.Duration.days ((d * 100) + i))
          in
          ignore (Db.insert_document db ~url ~ts:(at 0) doc0);
          List.iteri
            (fun i v -> ignore (Db.update_document db ~url ~ts:(at (i + 1)) v))
            versions)
        [ hist0; hist1 ];
      let probe = Timestamp.add base (Txq_temporal.Duration.days 101) in
      List.for_all
        (fun tag ->
          let pattern = Pattern.of_path_exn ("//" ^ tag) in
          List.for_all
            (fun domains ->
              Scan.tpattern_scan_all ~domains db pattern
              = Scan.tpattern_scan_all ~domains:1 db pattern
              && Scan.tpattern_scan ~domains db pattern probe
                 = Scan.tpattern_scan ~domains:1 db pattern probe
              && Scan.pattern_scan ~domains db pattern
                 = Scan.pattern_scan ~domains:1 db pattern)
            [ 2; 4 ])
        [ "name"; "price"; "item"; "review" ])

(* Regression: when the {e calling} domain's share of a Dpool.map raises,
   every spawned domain must still be joined before the exception escapes.
   The old code re-raised between spawn and join, leaking the workers; the
   leaked domains' tasks then raced the test's assertions.  With the fix,
   every non-raising task has run to completion by the time the exception
   is observed — whichever domain claimed the poisoned index. *)
let test_dpool_raise_joins_all () =
  let n = 8 in
  let completed = Atomic.make 0 in
  let spin () =
    for _ = 1 to 2_000_000 do
      ignore (Sys.opaque_identity 0)
    done
  in
  (match
     Dpool.map ~domains:4 (Array.init n Fun.id) (fun i ->
         if i = 0 then failwith "poisoned task"
         else begin
           spin ();
           Atomic.incr completed;
           i
         end)
   with
   | (_ : int array) -> Alcotest.fail "the poisoned task's exception was lost"
   | exception Failure msg ->
     Alcotest.(check string) "original exception re-raised" "poisoned task" msg);
  Alcotest.(check int) "all spawned domains joined before the re-raise"
    (n - 1) (Atomic.get completed)

(* Regression: the traversal's deltas-scanned readback was a plain global
   ref; two domains traversing concurrently clobbered each other's counts.
   Each domain owns a private database whose traversal depth it knows
   exactly — 500 interleaved rounds per domain must read back their own
   depth every single time. *)
let test_lifetime_counter_domain_local () =
  let traverse_rounds db teid expected =
    let bad = ref 0 in
    for _ = 1 to 500 do
      ignore (Lifetime.cre_time db ~strategy:`Traverse teid);
      if Lifetime.last_traverse_deltas () <> expected then incr bad
    done;
    !bad
  in
  let worker n_versions =
    Domain.spawn (fun () ->
        let db = Db.create () in
        let base = Timestamp.of_date ~day:1 ~month:3 ~year:2001 in
        let at i = Timestamp.add base (Txq_temporal.Duration.days i) in
        let id =
          Db.insert_document db ~url:"u" ~ts:(at 0) (parse "<a><b>w0</b></a>")
        in
        for i = 1 to n_versions - 1 do
          ignore
            (Db.update_document db ~url:"u" ~ts:(at i)
               (parse (Printf.sprintf "<a><b>w%d</b></a>" i)))
        done;
        let d = Db.doc db id in
        let root = Eid.make ~doc:id ~xid:(Vnode.xid (Docstore.current d)) in
        let teid =
          Eid.Temporal.make root (Docstore.ts_of_version d (n_versions - 1))
        in
        (* the root was created in version 0: the walk back from the newest
           version scans every delta of the chain *)
        traverse_rounds db teid (n_versions - 1))
  in
  let a = worker 3 and b = worker 8 in
  Alcotest.(check int) "domain A reads its own counts" 0 (Domain.join a);
  Alcotest.(check int) "domain B reads its own counts" 0 (Domain.join b)

let () =
  Alcotest.run "core"
    [
      ( "vrange",
        [
          Alcotest.test_case "set algebra" `Quick test_vrange;
          Alcotest.test_case "coalesce/diff/split_points" `Quick
            test_vrange_helpers;
          Alcotest.test_case "open-ended arms" `Quick test_vrange_open_ended;
          QCheck_alcotest.to_alcotest prop_vrange_diff_pointwise;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "of_path" `Quick test_pattern_of_path;
          Alcotest.test_case "validation" `Quick test_pattern_validate;
        ] );
      ( "pattern_scan",
        [
          Alcotest.test_case "current snapshot" `Quick test_pattern_scan_current;
          Alcotest.test_case "word filter" `Quick test_pattern_scan_word_filter;
          Alcotest.test_case "deleted docs excluded" `Quick
            test_pattern_scan_ignores_deleted;
          Alcotest.test_case "descendant axis" `Quick test_descendant_axis;
          Alcotest.test_case "output below root" `Quick test_output_below_root;
        ] );
      ( "tpattern_scan",
        [
          Alcotest.test_case "Q1 snapshot" `Quick test_q1_snapshot;
          Alcotest.test_case "before creation" `Quick test_snapshot_before_creation;
          Alcotest.test_case "early era" `Quick test_snapshot_only_akropolis_era;
          Alcotest.test_case "Q2 count, no reconstruction" `Quick
            test_q2_count_no_reconstruction;
          QCheck_alcotest.to_alcotest prop_tpattern_scan_bruteforce;
        ] );
      ( "tpattern_scan_all",
        [
          Alcotest.test_case "Q3 price history" `Quick test_q3_price_history;
          Alcotest.test_case "past-only matches" `Quick
            test_scan_all_finds_past_only_matches;
          Alcotest.test_case "timestamp intervals" `Quick test_binding_intervals;
          QCheck_alcotest.to_alcotest prop_scan_all_is_union_of_snapshots;
          QCheck_alcotest.to_alcotest prop_scan_domains_deterministic;
        ] );
      ( "history",
        [
          Alcotest.test_case "doc history" `Quick test_doc_history;
          Alcotest.test_case "element history" `Quick test_element_history;
          Alcotest.test_case "absent element" `Quick
            test_element_history_absent_element;
          Alcotest.test_case "sweep agrees on Figure 1" `Quick
            test_element_history_sweep_agrees;
          QCheck_alcotest.to_alcotest prop_sweep_equals_naive;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "cretime strategies agree" `Quick
            test_cretime_strategies_agree;
          Alcotest.test_case "original element" `Quick
            test_cretime_of_original_element;
          Alcotest.test_case "deltime" `Quick test_deltime;
          Alcotest.test_case "document deletion" `Quick
            test_deltime_document_deletion;
          QCheck_alcotest.to_alcotest prop_lifetime_strategies_agree;
        ] );
      ("nav", [Alcotest.test_case "previous/next/current" `Quick test_nav]);
      ( "domains",
        [
          Alcotest.test_case "dpool joins workers when a task raises" `Quick
            test_dpool_raise_joins_all;
          Alcotest.test_case "traverse counter is domain-local" `Quick
            test_lifetime_counter_domain_local;
        ] );
      ( "reconstruct_diff",
        [
          Alcotest.test_case "reconstruct operator" `Quick test_reconstruct_operator;
          Alcotest.test_case "diff operator" `Quick test_diff_operator;
        ] );
      ( "equality",
        [
          Alcotest.test_case "semantics" `Quick test_equality_semantics;
          Alcotest.test_case "identity" `Quick test_identity;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "count/sum/avg" `Quick test_aggregates;
          Alcotest.test_case "count_versions" `Quick test_count_versions;
          Alcotest.test_case "count_versions oracle (open ranges)" `Quick
            test_count_versions_oracle;
          Alcotest.test_case "eid printing" `Quick test_eid_printing;
          Alcotest.test_case "similarity bounds" `Quick test_similarity_bounds;
        ] );
    ]
