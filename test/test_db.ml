module Xml = Txq_xml.Xml
module Parse = Txq_xml.Parse
module Print = Txq_xml.Print
module Vnode = Txq_vxml.Vnode
module Timestamp = Txq_temporal.Timestamp
open Txq_db

let xml_testable = Alcotest.testable Print.pp Xml.equal
let parse = Parse.parse_exn
let ts = Timestamp.of_string
let url = "guide.com/restaurants.xml"

(* The paper's Figure 1: the restaurant list at guide.com in four states. *)
let fig1_v0 =
  parse
    {|<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>|}

let fig1_v1 =
  parse
    {|<guide><restaurant><name>Napoli</name><price>15</price></restaurant>
            <restaurant><name>Akropolis</name><price>13</price></restaurant></guide>|}

let fig1_v2 =
  parse
    {|<guide><restaurant><name>Napoli</name><price>18</price></restaurant>
            <restaurant><name>Akropolis</name><price>13</price></restaurant></guide>|}

let fig1_db ?config () =
  let db = Db.create ?config () in
  let id = Db.insert_document db ~url ~ts:(ts "01/01/2001") fig1_v0 in
  ignore (Db.update_document db ~url ~ts:(ts "15/01/2001") fig1_v1);
  ignore (Db.update_document db ~url ~ts:(ts "31/01/2001") fig1_v2);
  (db, id)

let test_insert_and_current () =
  let db, id = fig1_db () in
  let d = Db.doc db id in
  Alcotest.(check int) "three versions" 3 (Docstore.version_count d);
  Alcotest.check xml_testable "current content" (Xml.normalize fig1_v2)
    (Vnode.to_xml (Docstore.current d));
  Alcotest.(check bool) "alive" true (Docstore.is_alive d)

let test_duplicate_insert_rejected () =
  let db, _ = fig1_db () in
  Alcotest.check_raises "duplicate URL"
    (Invalid_argument
       "Db.insert_document: guide.com/restaurants.xml already exists")
    (fun () -> ignore (Db.insert_document db ~url fig1_v0))

let test_version_at () =
  let db, id = fig1_db () in
  let d = Db.doc db id in
  Alcotest.(check (option int)) "before creation" None
    (Docstore.version_at d (ts "31/12/2000"));
  Alcotest.(check (option int)) "on creation day" (Some 0)
    (Docstore.version_at d (ts "01/01/2001"));
  Alcotest.(check (option int)) "between v0 and v1" (Some 0)
    (Docstore.version_at d (ts "10/01/2001"));
  Alcotest.(check (option int)) "on v1 day" (Some 1)
    (Docstore.version_at d (ts "15/01/2001"));
  Alcotest.(check (option int)) "query Q1's 26/01/2001" (Some 1)
    (Docstore.version_at d (ts "26/01/2001"));
  Alcotest.(check (option int)) "after last" (Some 2)
    (Docstore.version_at d (ts "01/06/2001"))

let test_reconstruct_all_versions () =
  let db, id = fig1_db () in
  let check v expected =
    Alcotest.check xml_testable
      (Printf.sprintf "version %d" v)
      (Xml.normalize expected)
      (Vnode.to_xml (Db.reconstruct db id v))
  in
  check 0 fig1_v0;
  check 1 fig1_v1;
  check 2 fig1_v2

let test_reconstruct_at () =
  let db, id = fig1_db () in
  match Db.reconstruct_at db id (ts "26/01/2001") with
  | Some (v, tree) ->
    Alcotest.(check int) "version" 1 v;
    Alcotest.check xml_testable "snapshot content" (Xml.normalize fig1_v1)
      (Vnode.to_xml tree)
  | None -> Alcotest.fail "expected a version at 26/01/2001"

let test_xids_persist_across_commits () =
  let db, id = fig1_db () in
  let v0 = Db.reconstruct db id 0 and v2 = Db.reconstruct db id 2 in
  let napoli_xid tree =
    List.find_map
      (fun r ->
        match Vnode.children r with
        | name :: _ when String.equal (Vnode.text_content name) "Napoli" ->
          Some (Vnode.xid r)
        | _ -> None)
      (Vnode.children tree)
  in
  match (napoli_xid v0, napoli_xid v2) with
  | Some a, Some b ->
    Alcotest.(check int) "Napoli restaurant keeps its XID"
      (Txq_vxml.Xid.to_int a) (Txq_vxml.Xid.to_int b)
  | _ -> Alcotest.fail "Napoli not found in both versions"

let test_delete_document () =
  let db, id = fig1_db () in
  Db.delete_document db ~url ~ts:(ts "01/02/2001") ();
  let d = Db.doc db id in
  Alcotest.(check bool) "not alive" false (Docstore.is_alive d);
  Alcotest.(check (option int)) "no version after delete" None
    (Docstore.version_at d (ts "02/02/2001"));
  Alcotest.(check (option int)) "history intact" (Some 1)
    (Docstore.version_at d (ts "20/01/2001"));
  Alcotest.(check bool) "find_live is gone" true (Db.find_live db url = None);
  (* reconstruction of historical versions still works *)
  Alcotest.check xml_testable "reconstruct after delete" (Xml.normalize fig1_v0)
    (Vnode.to_xml (Db.reconstruct db id 0))

let test_url_reuse_gets_fresh_doc () =
  let db, id0 = fig1_db () in
  Db.delete_document db ~url ~ts:(ts "01/02/2001") ();
  let id1 = Db.insert_document db ~url ~ts:(ts "10/02/2001") fig1_v0 in
  Alcotest.(check bool) "new doc id" true (id1 <> id0);
  (match Db.find_at db url (ts "20/01/2001") with
   | Some (d, _) -> Alcotest.(check int) "old doc at old time" id0 (Docstore.doc_id d)
   | None -> Alcotest.fail "old doc not found");
  match Db.find_at db url (ts "11/02/2001") with
  | Some (d, _) -> Alcotest.(check int) "new doc at new time" id1 (Docstore.doc_id d)
  | None -> Alcotest.fail "new doc not found"

let test_version_intervals () =
  let db, id = fig1_db () in
  let d = Db.doc db id in
  let iv = Docstore.version_interval d 1 in
  Alcotest.(check string) "interval of v1" "[15/01/2001, 31/01/2001)"
    (Txq_temporal.Interval.to_string iv);
  let last = Docstore.version_interval d 2 in
  Alcotest.(check bool) "last is open" true (Txq_temporal.Interval.is_current last)

let test_timestamps_must_advance () =
  let db, _ = fig1_db () in
  Alcotest.check_raises "same timestamp rejected"
    (Invalid_argument "Clock.set: transaction time cannot move backwards")
    (fun () ->
      ignore (Db.update_document db ~url ~ts:(ts "15/01/2001") fig1_v1))

let test_snapshots_reduce_delta_reads () =
  let versions = 40 in
  let build config =
    let db = Db.create ~config () in
    let base = Timestamp.of_date ~day:1 ~month:1 ~year:2001 in
    ignore
      (Db.insert_document db ~url ~ts:base
         (parse "<g><r><name>Napoli</name><price>0</price></r></g>"));
    for i = 1 to versions - 1 do
      let xml =
        parse
          (Printf.sprintf "<g><r><name>Napoli</name><price>%d</price></r></g>" i)
      in
      ignore
        (Db.update_document db ~url
           ~ts:(Timestamp.add base (Txq_temporal.Duration.days i))
           xml)
    done;
    db
  in
  let deltas_for db =
    (match Db.find_live db url with
     | Some d ->
       Db.reset_io db;
       ignore (Db.reconstruct db (Docstore.doc_id d) 1)
     | None -> Alcotest.fail "doc missing");
    (Db.stats db).Db.deltas_read
  in
  let no_snap = deltas_for (build Config.default) in
  let with_snap = deltas_for (build (Config.with_snapshots 8 Config.default)) in
  Alcotest.(check int) "no snapshots: walk the whole chain" (versions - 2) no_snap;
  Alcotest.(check bool)
    (Printf.sprintf "snapshots shorten the walk (%d < %d)" with_snap no_snap)
    true
    (with_snap <= 4)

let test_reconstruct_cache () =
  let config = { Config.default with Config.version_cache_bytes = 1 lsl 20 } in
  let db = Db.create ~config () in
  ignore (Db.insert_document db ~url ~ts:(ts "01/01/2001") fig1_v0);
  ignore (Db.update_document db ~url ~ts:(ts "15/01/2001") fig1_v1);
  (match Db.find_live db url with
   | Some d ->
     let id = Docstore.doc_id d in
     ignore (Db.reconstruct db id 0);
     let before = (Db.stats db).Db.reconstructions in
     ignore (Db.reconstruct db id 0);
     Alcotest.(check int) "second hit served from cache" before
       (Db.stats db).Db.reconstructions;
     Alcotest.(check int) "cache hit counted" 1
       (Db.stats db).Db.reconstruct_cache_hits;
     Alcotest.(check int) "hit visible in io stats" 1
       (Db.io_stats db).Txq_store.Io_stats.vcache_hits;
     Alcotest.(check bool) "residency gauge is positive" true
       ((Db.io_stats db).Txq_store.Io_stats.vcache_bytes > 0)
   | None -> Alcotest.fail "doc missing")

let test_version_cache_disabled () =
  (* budget 0 must reproduce uncached behavior exactly: every reconstruct
     walks the chain, and no cache counter ever moves *)
  let config = { Config.default with Config.version_cache_bytes = 0 } in
  let db = Db.create ~config () in
  ignore (Db.insert_document db ~url ~ts:(ts "01/01/2001") fig1_v0);
  ignore (Db.update_document db ~url ~ts:(ts "15/01/2001") fig1_v1);
  ignore (Db.update_document db ~url ~ts:(ts "31/01/2001") fig1_v2);
  match Db.find_live db url with
  | None -> Alcotest.fail "doc missing"
  | Some d ->
    let id = Docstore.doc_id d in
    Db.reset_io db;
    ignore (Db.reconstruct db id 0);
    let first = (Db.stats db).Db.deltas_read in
    ignore (Db.reconstruct db id 0);
    Alcotest.(check int) "second walk costs the same" (2 * first)
      (Db.stats db).Db.deltas_read;
    Alcotest.(check int) "no hits" 0 (Db.stats db).Db.reconstruct_cache_hits;
    let io = Db.io_stats db in
    Alcotest.(check int) "no vcache traffic" 0
      (io.Txq_store.Io_stats.vcache_hits + io.Txq_store.Io_stats.vcache_misses
      + io.Txq_store.Io_stats.vcache_bytes)

let test_cretime_maintenance () =
  let db, id = fig1_db () in
  match Db.cretime db with
  | None -> Alcotest.fail "cretime index expected in default config"
  | Some idx ->
    (* the Akropolis restaurant appeared in v1 (15/01) *)
    let v2 = Db.reconstruct db id 2 in
    let akropolis =
      List.find
        (fun r -> String.equal (Vnode.text_content r) "Akropolis13")
        (Vnode.children v2)
    in
    let eid = Txq_vxml.Eid.make ~doc:id ~xid:(Vnode.xid akropolis) in
    Alcotest.(check (option string)) "create time" (Some "15/01/2001")
      (Option.map Timestamp.to_string (Cretime_index.create_time idx eid));
    Alcotest.(check (option string)) "still alive" None
      (Option.map Timestamp.to_string (Cretime_index.delete_time idx eid))

let test_fti_maintained_on_commit () =
  let db, id = fig1_db () in
  let fti = Db.fti db in
  (* "Akropolis" appears from version 1 on *)
  let postings = Txq_fti.Fti.lookup_h fti "Akropolis" in
  Alcotest.(check int) "one posting" 1 (List.length postings);
  let p = List.hd postings in
  Alcotest.(check int) "vstart" 1 p.Txq_fti.Posting.vstart;
  Alcotest.(check bool) "still open" true (Txq_fti.Posting.is_open p);
  (* "15" (Napoli's price) was replaced by "18" in version 2 *)
  let p15 = Txq_fti.Fti.lookup_h fti "15" in
  Alcotest.(check (list int)) "15 closed at v2" [2]
    (List.map (fun p -> p.Txq_fti.Posting.vend) p15);
  (* snapshot lookup at Q1's date *)
  let version_at d = Db.version_at db d (ts "26/01/2001") in
  Alcotest.(check int) "snapshot sees 15" 1
    (List.length (Txq_fti.Fti.lookup_t fti "15" ~version_at));
  Alcotest.(check int) "current misses 15" 0
    (List.length (Txq_fti.Fti.lookup fti "15"));
  ignore id

let test_fti_none_config () =
  let config = { Config.default with Config.fti_mode = Config.Fti_none } in
  let db = Db.create ~config () in
  ignore (Db.insert_document db ~url ~ts:(ts "01/01/2001") fig1_v0);
  Alcotest.check_raises "no fti"
    (Invalid_argument "Db.fti: no version-content index in this configuration")
    (fun () -> ignore (Db.fti db))

let test_delta_fti_records_changes () =
  let config = { Config.default with Config.fti_mode = Config.Fti_both } in
  let db = Db.create ~config () in
  ignore (Db.insert_document db ~url ~ts:(ts "01/01/2001") fig1_v0);
  ignore (Db.update_document db ~url ~ts:(ts "15/01/2001") fig1_v1);
  ignore (Db.update_document db ~url ~ts:(ts "31/01/2001") fig1_v2);
  let dfti = Db.delta_fti db in
  let akro = Txq_fti.Delta_fti.changes_of_kind dfti "Akropolis" Txq_fti.Delta_fti.Inserted in
  Alcotest.(check int) "Akropolis inserted once" 1 (List.length akro);
  Alcotest.(check int) "in version 1" 1
    (List.hd akro).Txq_fti.Delta_fti.ch_version;
  let deleted15 = Txq_fti.Delta_fti.changes_of_kind dfti "15" Txq_fti.Delta_fti.Deleted in
  Alcotest.(check int) "15 deleted once (price update)" 1 (List.length deleted15)

(* property: cached, incremental (nearest-anchor) and batched reconstruction
   are byte-identical (XIDs included) to a fresh full-chain walk, across
   cache budgets and snapshot spacings *)
let prop_cache_differential =
  QCheck.Test.make ~count:40
    ~name:"cached/incremental/batched reconstruct ≡ naive chain walk"
    (Txq_test_support.Gen_xml.arb_history ~max_versions:10)
    (fun (doc0, versions) ->
      let build config =
        let db = Db.create ~config () in
        let base = Timestamp.of_date ~day:1 ~month:1 ~year:2001 in
        let id = Db.insert_document db ~url ~ts:base doc0 in
        List.iteri
          (fun i v ->
            ignore
              (Db.update_document db ~url
                 ~ts:(Timestamp.add base (Txq_temporal.Duration.days (i + 1)))
                 v))
          versions;
        (db, id)
      in
      let check (db, id) =
        let d = Db.doc db id in
        let n = Docstore.version_count d in
        let naive v = fst (Docstore.reconstruct d v) in
        (* up then down: the second pass is served from cache entries and
           nearest-anchor incremental walks *)
        let ok_single =
          List.for_all
            (fun v -> Vnode.equal_with_xids (naive v) (Db.reconstruct db id v))
            (List.init n Fun.id @ List.rev (List.init n Fun.id))
        in
        let ok_range lo hi =
          let got = Db.reconstruct_range db id ~lo ~hi in
          List.map fst got = List.init (hi - lo + 1) (fun i -> hi - i)
          && List.for_all
               (fun (v, tree) -> Vnode.equal_with_xids (naive v) tree)
               got
        in
        ok_single && ok_range 0 (n - 1) && (n < 3 || ok_range 1 (n - 2))
      in
      List.for_all check
        [
          build Config.default;
          build { Config.default with Config.version_cache_bytes = 0 };
          build (Config.with_snapshots 4 Config.default);
          (* a ~200-byte budget forces constant eviction *)
          build
            { (Config.with_snapshots 4 Config.default) with
              Config.version_cache_bytes = 200 };
        ])

(* commit, delete and recover while the cache is warm: no stale tree may
   ever be served *)
let test_cache_invalidation () =
  let config = Config.durable Config.default in
  let db = Db.create ~config () in
  let id = Db.insert_document db ~url ~ts:(ts "01/01/2001") fig1_v0 in
  ignore (Db.update_document db ~url ~ts:(ts "15/01/2001") fig1_v1);
  ignore (Db.reconstruct db id 0);
  ignore (Db.reconstruct db id 1);
  (* commit while warm: version numbering is append-only, so old entries
     stay valid and the new version must be materialized fresh *)
  ignore (Db.update_document db ~url ~ts:(ts "31/01/2001") fig1_v2);
  let d = Db.doc db id in
  for v = 0 to 2 do
    Alcotest.(check bool) (Printf.sprintf "after commit, v%d" v) true
      (Vnode.equal_with_xids
         (fst (Docstore.reconstruct d v))
         (Db.reconstruct db id v))
  done;
  (* recover from the disk image while the live cache is warm: the rebuilt
     database starts a brand-new cache (possibly warmed by the index
     rebuild, but only ever from recovered state) and must agree with a
     naive walk over the recovered chain *)
  let db2 = Db.recover (Db.disk db) config in
  let d2 = Db.doc db2 id in
  for v = 0 to 2 do
    Alcotest.(check bool) (Printf.sprintf "after recover, v%d" v) true
      (Vnode.equal_with_xids
         (fst (Docstore.reconstruct d2 v))
         (Db.reconstruct db2 id v))
  done;
  (* delete while warm: the document's entries are evicted, and history
     still reconstructs correctly from disk *)
  Db.delete_document db ~url ~ts:(ts "01/03/2001") ();
  Alcotest.(check int) "deletion evicts the document's entries" 0
    (Db.io_stats db).Txq_store.Io_stats.vcache_bytes;
  for v = 0 to 2 do
    Alcotest.(check bool) (Printf.sprintf "after delete, v%d" v) true
      (Vnode.equal_with_xids
         (fst (Docstore.reconstruct d v))
         (Db.reconstruct db id v))
  done

(* property: reconstruction of every version of a random history equals the
   reference copies kept aside *)
let prop_reconstruct_matches_reference =
  QCheck.Test.make ~count:60 ~name:"db reconstruct ≡ retained references"
    (Txq_test_support.Gen_xml.arb_history ~max_versions:8)
    (fun (doc0, versions) ->
      let db = Db.create () in
      let base = Timestamp.of_date ~day:1 ~month:1 ~year:2001 in
      let id = Db.insert_document db ~url ~ts:base doc0 in
      List.iteri
        (fun i v ->
          ignore
            (Db.update_document db ~url
               ~ts:(Timestamp.add base (Txq_temporal.Duration.days (i + 1)))
               v))
        versions;
      List.for_all2
        (fun v reference ->
          Xml.equal
            (Xml.normalize reference)
            (Vnode.to_xml (Db.reconstruct db id v)))
        (List.init (1 + List.length versions) Fun.id)
        (doc0 :: versions))

let prop_fti_agrees_with_bruteforce =
  QCheck.Test.make ~count:40 ~name:"fti lookup_t ≡ brute-force snapshot search"
    (Txq_test_support.Gen_xml.arb_history ~max_versions:6)
    (fun (doc0, versions) ->
      let db = Db.create () in
      let base = Timestamp.of_date ~day:1 ~month:1 ~year:2001 in
      let id = Db.insert_document db ~url ~ts:base doc0 in
      List.iteri
        (fun i v ->
          ignore
            (Db.update_document db ~url
               ~ts:(Timestamp.add base (Txq_temporal.Duration.days (i + 1)))
               v))
        versions;
      let fti = Db.fti db in
      let all_versions = doc0 :: versions in
      List.for_all
        (fun (v, reference) ->
          let probe = Timestamp.add base (Txq_temporal.Duration.days v) in
          let version_at d = Db.version_at db d probe in
          let reference_words =
            List.sort_uniq String.compare (Xml.words (Xml.normalize reference))
          in
          (* every reference word is found at that time, and a word absent
             from the reference is not reported *)
          List.for_all
            (fun w ->
              Txq_fti.Fti.lookup_t fti w ~version_at <> [])
            reference_words
          && (let absent = "zzz-never-generated" in
              Txq_fti.Fti.lookup_t fti absent ~version_at = [])
          && ignore id = ())
        (List.mapi (fun i r -> (i, r)) all_versions))

(* --- document time (Section 3.1) --------------------------------------------- *)

let test_document_time_extraction () =
  let config =
    { Config.default with Config.document_time_path = Some "//meta/published" }
  in
  let db = Db.create ~config () in
  let article published body =
    parse
      (Printf.sprintf
         "<article><meta><published>%s</published></meta><body>%s</body></article>"
         published body)
  in
  let id =
    Db.insert_document db ~url:"news" ~ts:(ts "05/06/2001")
      (article "01/06/2001" "first")
  in
  ignore
    (Db.update_document db ~url:"news" ~ts:(ts "09/06/2001")
       (article "08/06/2001" "revised"));
  Alcotest.(check (option string)) "v0 doc time" (Some "01/06/2001")
    (Option.map Timestamp.to_string (Db.document_time db id 0));
  Alcotest.(check (option string)) "v1 doc time" (Some "08/06/2001")
    (Option.map Timestamp.to_string (Db.document_time db id 1));
  (* range query over the document-time index *)
  let hits =
    Db.find_by_document_time db ~t1:(ts "01/06/2001") ~t2:(ts "05/06/2001")
  in
  Alcotest.(check (list (pair int int))) "published in the first window"
    [(id, 0)]
    (List.map (fun (_, d, v) -> (d, v)) hits);
  (* a document without the element contributes nothing *)
  ignore
    (Db.insert_document db ~url:"other" ~ts:(ts "10/06/2001")
       (parse "<article><body>untimed</body></article>"));
  Alcotest.(check int) "untimed docs are not indexed" 2
    (List.length
       (Db.find_by_document_time db ~t1:Timestamp.minus_infinity
          ~t2:Timestamp.plus_infinity))

let test_document_time_disabled_by_default () =
  let db, id = fig1_db () in
  Alcotest.(check (option string)) "no doc time without config" None
    (Option.map Timestamp.to_string (Db.document_time db id 0))

(* --- integrity -------------------------------------------------------------- *)

let test_verify_clean_db () =
  let db, _ = fig1_db () in
  match Db.verify db with
  | Ok versions -> Alcotest.(check int) "three versions checked" 3 versions
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es)

let test_verify_detects_corruption () =
  let db, _ = fig1_db () in
  (* scribble over every page: reconstruction must fail loudly, never
     return wrong data silently *)
  let disk = Db.disk db in
  let garbage = Bytes.of_string "<<not-xml>>" in
  for page = 0 to Txq_store.Disk.page_count disk - 1 do
    Txq_store.Disk.write disk page garbage
  done;
  Db.flush_cache db;
  match Db.verify db with
  | Ok _ -> Alcotest.fail "corruption not detected"
  | Error diagnostics ->
    Alcotest.(check bool) "at least one diagnostic" true (diagnostics <> [])

let test_verify_detects_single_page_corruption () =
  (* corrupt exactly one delta page: verification must flag at least the
     versions whose chains cross it, and never crash *)
  let db, id = fig1_db () in
  (* find a page holding delta data: reconstruct v0 cold and watch reads *)
  Db.flush_cache db;
  Txq_store.Io_stats.reset (Db.io_stats db);
  ignore (Db.reconstruct db id 0);
  let disk = Db.disk db in
  (* clobber a page in the middle of the allocated range *)
  Txq_store.Disk.write disk
    (Txq_store.Disk.page_count disk / 2)
    (Bytes.of_string "garbage that is definitely not xml <<<");
  Db.flush_cache db;
  (match Db.verify db with
   | Ok _ ->
     (* the damaged page may have been a freed one; that's legal *)
     ()
   | Error diagnostics ->
     Alcotest.(check bool) "diagnostics name the document" true
       (List.exists
          (fun d ->
            String.length d > 0
            && (String.sub d 0 3 = "doc" || String.length d > 3))
          diagnostics))

let test_query_empty_db () =
  let db = Db.create () in
  (match Txq_query.Exec.run_string db {|SELECT R FROM doc("nowhere")/a R|} with
   | Ok xml ->
     Alcotest.(check string) "no rows" "<results/>" (Txq_xml.Print.to_string xml)
   | Error e -> Alcotest.failf "unexpected: %s" (Txq_query.Exec.error_to_string e));
  match
    Txq_query.Exec.run_string db
      {|SELECT COUNT(R) FROM collection("*")[EVERY]//x R|}
  with
  | Ok xml ->
    Alcotest.(check string) "count zero"
      "<results><result>0</result></results>" (Txq_xml.Print.to_string xml)
  | Error e -> Alcotest.failf "unexpected: %s" (Txq_query.Exec.error_to_string e)

let test_verify_after_delete () =
  let db, _ = fig1_db () in
  Db.delete_document db ~url ~ts:(ts "01/02/2001") ();
  match Db.verify db with
  | Ok versions -> Alcotest.(check int) "history still verifies" 3 versions
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es)

let test_reserved_names_rejected () =
  let db = Db.create () in
  Alcotest.check_raises "reserved element"
    (Invalid_argument
       "Docstore: cannot ingest document: reserved element name <_xid>")
    (fun () ->
      ignore (Db.insert_document db ~url:"bad" (parse "<a><_xid/></a>")));
  Alcotest.check_raises "reserved attribute"
    (Invalid_argument
       "Docstore: cannot ingest document: reserved attribute name \"_tx\"")
    (fun () ->
      ignore (Db.insert_document db ~url:"bad2" (parse "<a _tx=\"1\"/>")))

(* Regression: the per-second document-time sequence must refuse (count and
   skip) the 2^20th row for one instant instead of masking the sequence into
   an earlier key and silently replacing an unrelated row. *)
let test_dtime_overflow_boundary () =
  let config =
    { Config.default with Config.document_time_path = Some "//meta/published" }
  in
  let db = Db.create ~config () in
  let article published body =
    parse
      (Printf.sprintf
         "<article><meta><published>%s</published></meta><body>%s</body></article>"
         published body)
  in
  let published = "26/01/2001" in
  let seconds = Timestamp.to_seconds (ts published) in
  let skipped () =
    Option.value ~default:0
      (Txq_obs.Metrics.counter_value "db.dtime.overflow_skipped")
  in
  let before = skipped () in
  (* pre-load the counter so the next row takes the last in-range slot *)
  Db.set_dtime_count_for_tests db ~seconds ((1 lsl 20) - 1);
  ignore
    (Db.insert_document db ~url:"dtime/last-slot" ~ts:(ts "01/02/2001")
       (article published "fits"));
  Alcotest.(check int) "last slot is not an overflow" 0 (skipped () - before);
  ignore
    (Db.insert_document db ~url:"dtime/one-too-many" ~ts:(ts "02/02/2001")
       (article published "skipped"));
  Alcotest.(check int) "row past the cap is counted" 1 (skipped () - before);
  (* the boundary row survives in the index; the overflowing one is absent
     rather than having replaced it *)
  let hits =
    Db.find_by_document_time db ~t1:(ts published)
      ~t2:(Timestamp.of_seconds (seconds + 1))
  in
  Alcotest.(check int) "index holds the boundary row only" 1 (List.length hits)

(* Regression: releasing the same snapshot twice must not decrement another
   snapshot's pin (the second release is a no-op). *)
let test_release_idempotent () =
  let db, _ = fig1_db () in
  let s1 = Db.snapshot db in
  let s2 = Db.snapshot db in
  Alcotest.(check int) "two pins" 2 (Db.pinned_snapshots db);
  Alcotest.(check bool) "live before release" false (Db.is_released s1);
  Db.release s1;
  Db.release s1;
  Alcotest.(check bool) "marked released" true (Db.is_released s1);
  Alcotest.(check int) "double release frees one pin" 1 (Db.pinned_snapshots db);
  Db.release s2;
  Alcotest.(check int) "all pins gone" 0 (Db.pinned_snapshots db);
  Db.release s2;
  Alcotest.(check int) "release on empty stays zero" 0 (Db.pinned_snapshots db)

let () =
  Alcotest.run "db"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "insert and current" `Quick test_insert_and_current;
          Alcotest.test_case "duplicate insert" `Quick test_duplicate_insert_rejected;
          Alcotest.test_case "delete" `Quick test_delete_document;
          Alcotest.test_case "url reuse" `Quick test_url_reuse_gets_fresh_doc;
          Alcotest.test_case "monotone timestamps" `Quick test_timestamps_must_advance;
        ] );
      ( "versions",
        [
          Alcotest.test_case "version_at" `Quick test_version_at;
          Alcotest.test_case "intervals" `Quick test_version_intervals;
          Alcotest.test_case "reconstruct all" `Quick test_reconstruct_all_versions;
          Alcotest.test_case "reconstruct_at" `Quick test_reconstruct_at;
          Alcotest.test_case "xids persist" `Quick test_xids_persist_across_commits;
          Alcotest.test_case "snapshots cut delta reads" `Quick
            test_snapshots_reduce_delta_reads;
          Alcotest.test_case "reconstruction cache" `Quick test_reconstruct_cache;
          Alcotest.test_case "cache disabled" `Quick test_version_cache_disabled;
          Alcotest.test_case "cache invalidation" `Quick test_cache_invalidation;
          QCheck_alcotest.to_alcotest prop_cache_differential;
          QCheck_alcotest.to_alcotest prop_reconstruct_matches_reference;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "cretime" `Quick test_cretime_maintenance;
          Alcotest.test_case "fti on commit" `Quick test_fti_maintained_on_commit;
          Alcotest.test_case "fti disabled" `Quick test_fti_none_config;
          Alcotest.test_case "delta fti" `Quick test_delta_fti_records_changes;
          QCheck_alcotest.to_alcotest prop_fti_agrees_with_bruteforce;
        ] );
      ( "document_time",
        [
          Alcotest.test_case "extraction and range query" `Quick
            test_document_time_extraction;
          Alcotest.test_case "off by default" `Quick
            test_document_time_disabled_by_default;
          Alcotest.test_case "per-second overflow boundary" `Quick
            test_dtime_overflow_boundary;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "release is idempotent" `Quick
            test_release_idempotent;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "verify clean db" `Quick test_verify_clean_db;
          Alcotest.test_case "verify detects corruption" `Quick
            test_verify_detects_corruption;
          Alcotest.test_case "single-page corruption" `Quick
            test_verify_detects_single_page_corruption;
          Alcotest.test_case "query empty db" `Quick test_query_empty_db;
          Alcotest.test_case "verify after delete" `Quick test_verify_after_delete;
          Alcotest.test_case "reserved names rejected" `Quick
            test_reserved_names_rejected;
        ] );
    ]
