module Vnode = Txq_vxml.Vnode
module Xid = Txq_vxml.Xid
open Txq_fti

let vnode s = Vnode.of_xml (Xid.Gen.create ()) (Txq_xml.Parse.parse_exn s)

(* --- posting ----------------------------------------------------------- *)

let test_posting_validity () =
  let p =
    Posting.make ~doc:1 ~kind:Vnode.Word ~path:[| Xid.of_int 1 |] ~vstart:3
  in
  Alcotest.(check bool) "open" true (Posting.is_open p);
  Alcotest.(check bool) "valid at start" true (Posting.valid_at p 3);
  Alcotest.(check bool) "valid later" true (Posting.valid_at p 1000);
  Alcotest.(check bool) "not before" false (Posting.valid_at p 2);
  p.Posting.vend <- 5;
  Alcotest.(check bool) "closed upper open" false (Posting.valid_at p 5);
  Alcotest.(check bool) "still valid at 4" true (Posting.valid_at p 4)

let test_posting_join_order () =
  let mk doc path vstart =
    Posting.make ~doc ~kind:Vnode.Tag
      ~path:(Array.of_list (List.map Xid.of_int path))
      ~vstart
  in
  let sorted =
    List.sort Posting.compare_for_join
      [mk 2 [1] 0; mk 1 [1; 3] 0; mk 1 [1; 2] 1; mk 1 [1; 2] 0]
  in
  Alcotest.(check (list (pair int int)))
    "doc, then path, then version"
    [(1, 0); (1, 1); (1, 0); (2, 0)]
    (List.map (fun p -> (p.Posting.doc, p.Posting.vstart)) sorted)

(* --- fti lifecycle ------------------------------------------------------ *)

let test_fti_open_close () =
  let fti = Fti.create () in
  Fti.index_version fti ~doc:0 ~version:0 (vnode "<a><b>hello</b></a>");
  Fti.index_version fti ~doc:0 ~version:1 (vnode "<a><b>world</b></a>");
  (* "hello" closed at v1, "world" open from v1, tags persist *)
  let hello = Fti.lookup_h fti "hello" in
  Alcotest.(check (list (pair int int))) "hello interval" [(0, 1)]
    (List.map (fun p -> (p.Posting.vstart, p.Posting.vend)) hello);
  let world = Fti.lookup fti "world" in
  Alcotest.(check int) "world open" 1 (List.length world);
  let b_tag = Fti.lookup_h fti "b" in
  Alcotest.(check int) "tag persists as one posting" 1 (List.length b_tag);
  Alcotest.(check bool) "b still open" true
    (Posting.is_open (List.hd b_tag))

let test_fti_snapshot_lookup () =
  let fti = Fti.create () in
  Fti.index_version fti ~doc:0 ~version:0 (vnode "<a>x</a>");
  Fti.index_version fti ~doc:0 ~version:1 (vnode "<a>y</a>");
  Fti.index_version fti ~doc:0 ~version:2 (vnode "<a>x</a>");
  let at v = Fti.lookup_t fti "x" ~version_at:(fun _ -> Some v) in
  Alcotest.(check int) "x at v0" 1 (List.length (at 0));
  Alcotest.(check int) "x gone at v1" 0 (List.length (at 1));
  Alcotest.(check int) "x back at v2" 1 (List.length (at 2));
  (* reappearance = a second posting, not a resurrected one *)
  Alcotest.(check int) "two postings total" 2
    (List.length (Fti.lookup_h fti "x"));
  Alcotest.(check int) "doc missing at query time" 0
    (List.length (Fti.lookup_t fti "x" ~version_at:(fun _ -> None)))

let test_fti_delete_document () =
  let fti = Fti.create () in
  Fti.index_version fti ~doc:0 ~version:0 (vnode "<a>x</a>");
  Fti.delete_document fti ~doc:0 ~version:1;
  Alcotest.(check int) "nothing current" 0 (List.length (Fti.lookup fti "x"));
  Alcotest.(check int) "history remains" 1 (List.length (Fti.lookup_h fti "x"));
  Alcotest.(check int) "posting closed at the delete bound" 1
    (List.hd (Fti.lookup_h fti "x")).Posting.vend

let test_fti_out_of_order_rejected () =
  let fti = Fti.create () in
  Fti.index_version fti ~doc:0 ~version:1 (vnode "<a>x</a>");
  Alcotest.check_raises "monotone versions"
    (Invalid_argument
       "Fti.index_version: version 0 of doc 0 indexed out of order (last 1)")
    (fun () -> Fti.index_version fti ~doc:0 ~version:0 (vnode "<a>y</a>"))

let test_fti_multi_doc () =
  let fti = Fti.create () in
  Fti.index_version fti ~doc:0 ~version:0 (vnode "<a>shared</a>");
  Fti.index_version fti ~doc:1 ~version:0 (vnode "<b>shared</b>");
  Alcotest.(check int) "postings across docs" 2
    (List.length (Fti.lookup fti "shared"));
  Alcotest.(check int) "doc filter" 1
    (List.length (Fti.lookup_h_doc fti "shared" ~doc:1));
  Alcotest.(check bool) "vocabulary covers tags and words" true
    (let v = Fti.vocabulary fti in
     List.mem "a" v && List.mem "b" v && List.mem "shared" v)

let test_fti_stats () =
  let fti = Fti.create () in
  Alcotest.(check int) "empty words" 0 (Fti.word_count fti);
  Fti.index_version fti ~doc:0 ~version:0 (vnode "<a k=\"v\">w w</a>");
  (* words: a (tag), k, v, w — duplicate w collapses per position *)
  Alcotest.(check int) "word count" 4 (Fti.word_count fti);
  Alcotest.(check int) "posting count" 4 (Fti.posting_count fti)

(* a moved element closes the old-path postings and opens new ones *)
let test_fti_move_reindexes_path () =
  let fti = Fti.create () in
  Fti.index_version fti ~doc:0 ~version:0
    (vnode "<r><a><x>deep</x></a><b/></r>");
  (* same nodes, x moved under b: simulate with explicit xids *)
  let v1 =
    (* r=1 a=2 x=3 text=4 b=5 — move x under b *)
    Vnode.Elem
      {
        xid = Xid.of_int 1;
        tag = "r";
        attrs = [];
        children =
          [
            Vnode.Elem { xid = Xid.of_int 2; tag = "a"; attrs = []; children = [] };
            Vnode.Elem
              {
                xid = Xid.of_int 5;
                tag = "b";
                attrs = [];
                children =
                  [
                    Vnode.Elem
                      {
                        xid = Xid.of_int 3;
                        tag = "x";
                        attrs = [];
                        children =
                          [Vnode.Text { xid = Xid.of_int 4; content = "deep" }];
                      };
                  ];
              };
          ];
      }
  in
  Fti.index_version fti ~doc:0 ~version:1 v1;
  let deep = Fti.lookup_h fti "deep" in
  Alcotest.(check int) "old posting closed + new posting" 2 (List.length deep);
  let open_ones = List.filter Posting.is_open deep in
  (match open_ones with
   | [p] ->
     Alcotest.(check (list int)) "new path r/b/x" [1; 5; 3]
       (Array.to_list (Array.map Xid.to_int p.Posting.path))
   | _ -> Alcotest.fail "expected exactly one open posting")

(* --- delta fti ----------------------------------------------------------- *)

let test_delta_fti_ops () =
  let dfti = Delta_fti.create () in
  Delta_fti.index_initial dfti ~doc:0 (vnode "<g><r>old</r></g>");
  let delta =
    Txq_vxml.Delta.make ~from_version:0 ~to_version:1
      [
        Txq_vxml.Delta.Update
          { xid = Xid.of_int 3; old_text = "old"; new_text = "new" };
        Txq_vxml.Delta.Rename
          { xid = Xid.of_int 2; old_tag = "r"; new_tag = "s" };
        Txq_vxml.Delta.Insert
          {
            parent = Xid.of_int 1;
            after = None;
            tree = vnode "<extra>stuff</extra>";
          };
      ]
  in
  Delta_fti.index_delta dfti ~doc:0 ~version:1 delta;
  let kinds w k = List.length (Delta_fti.changes_of_kind dfti w k) in
  Alcotest.(check int) "initial insert of 'old'" 1 (kinds "old" Delta_fti.Inserted);
  Alcotest.(check int) "'old' deleted by the update" 1 (kinds "old" Delta_fti.Deleted);
  Alcotest.(check int) "'new' updated in" 1 (kinds "new" Delta_fti.Updated);
  Alcotest.(check int) "rename recorded" 1 (kinds "s" Delta_fti.Renamed);
  Alcotest.(check int) "old tag recorded deleted" 1 (kinds "r" Delta_fti.Deleted);
  Alcotest.(check int) "inserted subtree words" 1 (kinds "stuff" Delta_fti.Inserted);
  Alcotest.(check bool) "entry counts add up" true (Delta_fti.entry_count dfti > 5)

let test_delta_fti_deletions_in_doc () =
  let dfti = Delta_fti.create () in
  let tree = vnode "<r>bye</r>" in
  Delta_fti.index_delta dfti ~doc:7 ~version:3
    (Txq_vxml.Delta.make ~from_version:2 ~to_version:3
       [Txq_vxml.Delta.Delete { parent = Xid.of_int 99; after = None; tree }]);
  (match Delta_fti.deletions_in_doc dfti "bye" ~doc:7 with
   | [e] ->
     Alcotest.(check int) "version" 3 e.Delta_fti.ch_version;
     Alcotest.(check int) "doc" 7 e.Delta_fti.ch_doc
   | other -> Alcotest.failf "expected one entry, got %d" (List.length other));
  Alcotest.(check int) "other doc empty" 0
    (List.length (Delta_fti.deletions_in_doc dfti "bye" ~doc:8))

(* The delta index must tokenize text exactly as the version-content index
   does — it once split on ' ' alone and silently missed words separated by
   tabs, newlines or punctuation.  Both tokenizers are checked against an
   independent spec of the separator class, and at the index level: every
   word of an inserted tree is findable. *)
let separator_class =
  [ ' '; '\t'; '\n'; '\r'; ','; ';'; '.'; '!'; '?'; '('; ')'; '"' ]

let spec_split s =
  let blanked =
    String.map (fun c -> if List.mem c separator_class then ' ' else c) s
  in
  List.filter (fun w -> w <> "") (String.split_on_char ' ' blanked)

let gen_messy_text =
  QCheck.Gen.(
    let sep =
      map (String.make 1) (oneofl separator_class)
      |> list_size (int_range 1 3)
      |> map (String.concat "")
    in
    let word = oneofl [ "pizza"; "napoli"; "x1"; "deep-dish"; "a'b"; "fine" ] in
    list_size (int_range 0 8) (pair word sep) >>= fun pieces ->
    sep >>= fun lead ->
    return (lead ^ String.concat "" (List.map (fun (w, s) -> w ^ s) pieces)))

let prop_tokenizers_agree =
  QCheck.Test.make ~count:300 ~name:"delta-fti tokenizer ≡ vnode tokenizer"
    (QCheck.make ~print:(Printf.sprintf "%S") gen_messy_text)
    (fun text ->
      let words = spec_split text in
      Delta_fti.split_words text = words
      && Vnode.split_words text = words
      &&
      let tree =
        Vnode.of_xml (Xid.Gen.create ())
          (Txq_xml.Xml.normalize
             (Txq_xml.Xml.element "r" [ Txq_xml.Xml.text text ]))
      in
      let dfti = Delta_fti.create () in
      Delta_fti.index_initial dfti ~doc:0 tree;
      List.for_all (fun w -> Delta_fti.changes dfti w <> []) words)

(* property: FTI incremental maintenance ≡ indexing each version from
   scratch *)
let prop_incremental_equals_scratch =
  QCheck.Test.make ~count:40 ~name:"fti incremental ≡ from-scratch"
    (Txq_test_support.Gen_xml.arb_history ~max_versions:6)
    (fun (doc0, versions) ->
      let gen = Xid.Gen.create () in
      (* identified versions via diff, like the db commit path *)
      let v0 = Vnode.of_xml gen (Txq_xml.Xml.normalize doc0) in
      let identified =
        List.rev
          (snd
             (List.fold_left
                (fun (prev, acc) xml ->
                  let _, next =
                    Txq_vxml.Diff.diff ~gen ~old_tree:prev
                      ~new_tree:(Txq_xml.Xml.normalize xml)
                  in
                  (next, next :: acc))
                (v0, [v0]) versions))
      in
      let incremental = Fti.create () in
      List.iteri
        (fun v tree -> Fti.index_version incremental ~doc:0 ~version:v tree)
        identified;
      (* compare against per-version brute force for every word *)
      List.for_all
        (fun word ->
          List.for_all
            (fun v ->
              let via_index =
                List.length
                  (Fti.lookup_t incremental word ~version_at:(fun _ -> Some v))
              in
              let brute =
                Vnode.Occ_set.cardinal
                  (Vnode.Occ_set.filter
                     (fun (w, _, _) -> String.equal w word)
                     (Vnode.occurrence_set (List.nth identified v)))
              in
              via_index = brute)
            (List.init (List.length identified) Fun.id))
        (Fti.vocabulary incremental))

(* --- frozen segments ----------------------------------------------------- *)

let mkp doc path vstart =
  Posting.make ~doc ~kind:Vnode.Tag
    ~path:(Array.of_list (List.map Xid.of_int path))
    ~vstart

let test_segment_doc_bounds () =
  let seg =
    Segment.of_unsorted
      [| mkp 5 [1] 0; mkp 1 [1; 2] 0; mkp 1 [1] 0; mkp 1 [1; 2] 3; mkp 9 [2] 1 |]
  in
  Alcotest.(check int) "length" 5 (Segment.length seg);
  Alcotest.(check int) "doc count" 3 (Segment.doc_count seg);
  Alcotest.(check (pair int int)) "doc 1 run" (0, 3)
    (Segment.doc_bounds seg ~doc:1);
  Alcotest.(check (pair int int)) "doc 5 run" (3, 4)
    (Segment.doc_bounds seg ~doc:5);
  Alcotest.(check (pair int int)) "doc 9 run" (4, 5)
    (Segment.doc_bounds seg ~doc:9);
  Alcotest.(check (pair int int)) "absent doc" (0, 0)
    (Segment.doc_bounds seg ~doc:7);
  Alcotest.(check (pair int int)) "absent doc below" (0, 0)
    (Segment.doc_bounds seg ~doc:0);
  (* the run really is sorted and contiguous per doc *)
  let seen = ref [] in
  Segment.iter_doc seg ~doc:1 (fun p -> seen := p.Posting.vstart :: !seen);
  Alcotest.(check (list int)) "doc 1 vstarts in order" [0; 0; 3]
    (List.rev !seen)

let test_segment_merge_deterministic () =
  let all =
    [ mkp 1 [1] 0; mkp 1 [1; 2] 0; mkp 2 [1] 0; mkp 2 [1] 2; mkp 3 [4] 1 ]
  in
  let arr l = Segment.postings (Segment.merge l) in
  (* every 2-way split of [all] into runs merges to the same array *)
  let splits =
    [
      ([ mkp 1 [1] 0; mkp 2 [1] 2 ], [ mkp 1 [1; 2] 0; mkp 2 [1] 0; mkp 3 [4] 1 ]);
      ([ mkp 3 [4] 1 ], [ mkp 1 [1] 0; mkp 1 [1; 2] 0; mkp 2 [1] 0; mkp 2 [1] 2 ]);
    ]
  in
  let expect = Segment.postings (Segment.of_unsorted (Array.of_list all)) in
  let shape a =
    Array.to_list
      (Array.map (fun p -> (p.Posting.doc, p.Posting.vstart)) a)
  in
  List.iter
    (fun (a, b) ->
      let merged =
        arr
          [
            Segment.of_unsorted (Array.of_list a);
            Segment.of_unsorted (Array.of_list b);
          ]
      in
      Alcotest.(check (list (pair int int)))
        "merge = sort of union" (shape expect) (shape merged);
      (* argument order must not matter *)
      let swapped =
        arr
          [
            Segment.of_unsorted (Array.of_list b);
            Segment.of_unsorted (Array.of_list a);
          ]
      in
      Alcotest.(check (list (pair int int)))
        "merge arg order irrelevant" (shape expect) (shape swapped))
    splits;
  Alcotest.(check int) "merge of empties" 0
    (Segment.length (Segment.merge [ Segment.of_unsorted [||]; Segment.of_unsorted [||] ]))

(* Occ_key hashing must fold the whole XID path: 100 deep paths sharing a
   long common prefix and differing only at the last element must land in
   100 distinct buckets.  (Hashtbl.hash samples a bounded prefix of its
   input and maps all of these to one value, degrading the open-postings
   table to a linear chain.) *)
let test_occ_hash_deep_paths () =
  let deep_path i = Array.append (Array.init 30 (fun j -> j + 1)) [| i |] in
  let hashes =
    List.init 100 (fun i -> Fti.occ_key_hash ("w", Vnode.Word, deep_path i))
  in
  let distinct = List.sort_uniq compare hashes in
  Alcotest.(check int) "all distinct" 100 (List.length distinct)

(* property: the two-tier index under any interleaving of indexing,
   freezing and deletion answers every lookup exactly like the naive
   list-only index (watermark = max_int ⇒ the original single-tier path) *)
let canon ps =
  List.map
    (fun p ->
      ( p.Posting.doc,
        Array.to_list (Array.map Xid.to_int p.Posting.path),
        p.Posting.vstart,
        p.Posting.vend ))
    (List.sort
       (fun a b ->
         match Posting.compare_total a b with
         | 0 -> Int.compare a.Posting.vend b.Posting.vend
         | c -> c)
       ps)

let identified_versions (doc0, versions) =
  let gen = Xid.Gen.create () in
  let v0 = Vnode.of_xml gen (Txq_xml.Xml.normalize doc0) in
  List.rev
    (snd
       (List.fold_left
          (fun (prev, acc) xml ->
            let _, next =
              Txq_vxml.Diff.diff ~gen ~old_tree:prev
                ~new_tree:(Txq_xml.Xml.normalize xml)
            in
            (next, next :: acc))
          (v0, [ v0 ]) versions))

let prop_frozen_equals_naive =
  QCheck.Test.make ~count:30 ~name:"fti frozen segments ≡ naive index"
    QCheck.(
      triple
        (Txq_test_support.Gen_xml.arb_history ~max_versions:4)
        (Txq_test_support.Gen_xml.arb_history ~max_versions:4)
        (pair small_nat small_nat))
    (fun (hist0, hist1, (mask, del)) ->
      let vs0 = identified_versions hist0 in
      let vs1 = identified_versions hist1 in
      let subject = Fti.create ~segment_postings:3 () in
      let oracle = Fti.create ~segment_postings:max_int () in
      (* interleave the two documents' commits; after step i, freeze the
         subject iff bit i of [mask] is set (on top of the automatic
         watermark freezes the tiny segment_postings=3 forces) *)
      let ops =
        let tag d = List.mapi (fun v tree -> (d, v, tree)) in
        let rec weave a b =
          match (a, b) with
          | [], rest | rest, [] -> rest
          | x :: a, y :: b -> x :: y :: weave a b
        in
        weave (tag 0 vs0) (tag 1 vs1)
      in
      List.iteri
        (fun i (doc, version, tree) ->
          Fti.index_version subject ~doc ~version tree;
          Fti.index_version oracle ~doc ~version tree;
          if (mask lsr i) land 1 = 1 then Fti.freeze subject)
        ops;
      if del land 1 = 1 then begin
        Fti.delete_document subject ~doc:0 ~version:(List.length vs0);
        Fti.delete_document oracle ~doc:0 ~version:(List.length vs0)
      end;
      Fti.freeze subject;
      let words =
        List.sort_uniq String.compare
          (Fti.vocabulary subject @ Fti.vocabulary oracle)
      in
      Alcotest.(check int)
        "posting counts agree"
        (Fti.posting_count oracle) (Fti.posting_count subject);
      List.for_all
        (fun w ->
          canon (Fti.lookup subject w) = canon (Fti.lookup oracle w)
          && canon (Fti.lookup_h subject w) = canon (Fti.lookup_h oracle w)
          && List.for_all
               (fun doc ->
                 canon (Fti.lookup_h_doc subject w ~doc)
                 = canon (Fti.lookup_h_doc oracle w ~doc))
               [ 0; 1; 2 ]
          && List.for_all
               (fun v ->
                 let at fti =
                   Fti.lookup_t fti w ~version_at:(fun _ -> Some v)
                 in
                 canon (at subject) = canon (at oracle))
               [ 0; 1; 2; 3; 4 ])
        words)

let test_freeze_stats () =
  let fti = Fti.create ~segment_postings:2 () in
  Fti.index_version fti ~doc:0 ~version:0 (vnode "<a><b>x y</b></a>");
  Alcotest.(check bool) "watermark crossed at the commit boundary" true
    (Fti.freeze_count fti >= 1);
  Alcotest.(check bool) "segments exist" true (Fti.segment_count fti > 0);
  Alcotest.(check int) "tail drained" 0 (Fti.tail_posting_count fti);
  Alcotest.(check int) "frozen = total" (Fti.posting_count fti)
    (Fti.frozen_posting_count fti);
  Alcotest.(check bool) "frozen bytes accounted" true (Fti.frozen_bytes fti > 0);
  (* a frozen open posting still closes in place *)
  Fti.index_version fti ~doc:0 ~version:1 (vnode "<a><b>x</b></a>");
  let y = Fti.lookup_h fti "y" in
  Alcotest.(check (list (pair int int))) "y closed inside the segment"
    [ (0, 1) ]
    (List.map (fun p -> (p.Posting.vstart, p.Posting.vend)) y)

let () =
  Alcotest.run "fti"
    [
      ( "posting",
        [
          Alcotest.test_case "validity" `Quick test_posting_validity;
          Alcotest.test_case "join order" `Quick test_posting_join_order;
        ] );
      ( "fti",
        [
          Alcotest.test_case "open/close" `Quick test_fti_open_close;
          Alcotest.test_case "snapshot lookup" `Quick test_fti_snapshot_lookup;
          Alcotest.test_case "delete document" `Quick test_fti_delete_document;
          Alcotest.test_case "out-of-order rejected" `Quick
            test_fti_out_of_order_rejected;
          Alcotest.test_case "multi-document" `Quick test_fti_multi_doc;
          Alcotest.test_case "stats" `Quick test_fti_stats;
          Alcotest.test_case "move reindexes path" `Quick
            test_fti_move_reindexes_path;
          QCheck_alcotest.to_alcotest prop_incremental_equals_scratch;
        ] );
      ( "segments",
        [
          Alcotest.test_case "doc bounds" `Quick test_segment_doc_bounds;
          Alcotest.test_case "merge deterministic" `Quick
            test_segment_merge_deterministic;
          Alcotest.test_case "deep-path hashing" `Quick
            test_occ_hash_deep_paths;
          Alcotest.test_case "freeze stats" `Quick test_freeze_stats;
          QCheck_alcotest.to_alcotest prop_frozen_equals_naive;
        ] );
      ( "delta_fti",
        [
          Alcotest.test_case "operation kinds" `Quick test_delta_fti_ops;
          Alcotest.test_case "deletions in doc" `Quick
            test_delta_fti_deletions_in_doc;
          QCheck_alcotest.to_alcotest prop_tokenizers_agree;
        ] );
    ]
