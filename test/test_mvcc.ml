(* MVCC snapshot reads and the group-committed writer.

   The centrepieces are differentials: a snapshot pinned after k operations
   must answer every query exactly like a fresh database built from the
   first k operations alone (the prefix-db oracle) — first serially under
   qcheck, then with reader domains querying their own snapshots while the
   writer commits concurrently.  Group commit is checked at the journal
   level (batching, one durability point per flush, all-or-prefix under a
   torn batch write) and at the database level (a crash sweep over a
   group-committed workload recovers to a strict operation prefix). *)

module Xml = Txq_xml.Xml
module Print = Txq_xml.Print
module Parse = Txq_xml.Parse
module Vnode = Txq_vxml.Vnode
module Eid = Txq_vxml.Eid
module Timestamp = Txq_temporal.Timestamp
module Disk = Txq_store.Disk
module Buffer_pool = Txq_store.Buffer_pool
module Journal = Txq_store.Journal
module Io_stats = Txq_store.Io_stats
module Rwlock = Txq_store.Rwlock
module Config = Txq_db.Config
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Scan = Txq_core.Scan
module Pattern = Txq_core.Pattern
module Lifetime = Txq_core.Lifetime
module Gen_xml = Txq_test_support.Gen_xml

let ts = Timestamp.of_string
let parse = Parse.parse_exn
let day = 86_400
let base_seconds = Timestamp.to_seconds (ts "01/06/2001")
let op_ts i = Timestamp.of_seconds (base_seconds + ((i + 1) * day))

(* --- workloads ---------------------------------------------------------- *)

type op = Ins of string * Xml.t | Upd of string * Xml.t | Del of string

let apply db i = function
  | Ins (u, x) -> ignore (Db.insert_document db ~url:u ~ts:(op_ts i) x)
  | Upd (u, x) -> ignore (Db.update_document db ~url:u ~ts:(op_ts i) x)
  | Del u -> Db.delete_document db ~url:u ~ts:(op_ts i) ()

let replay config ops =
  let db = Db.create ~config () in
  List.iteri (apply db) ops;
  db

let interleave a b =
  let rec go acc = function
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys -> go (y :: x :: acc) (xs, ys)
  in
  go [] (a, b)

(* Interleaved random histories of "a" and "b"; [h] picks end deletions. *)
let ops_of ((a0, asuccs), (b0, bsuccs), h) =
  Ins ("a", a0) :: Ins ("b", b0)
  :: interleave
       (List.map (fun x -> Upd ("a", x)) asuccs)
       (List.map (fun x -> Upd ("b", x)) bsuccs)
  @ (if h land 1 = 1 then [ Del "b" ] else [])
  @ if h land 2 = 2 then [ Del "a" ] else []

(* --- fingerprints -------------------------------------------------------- *)

let patterns =
  [
    Pattern.of_path_exn "//name";
    Pattern.of_path_exn "//item";
    Pattern.of_path_exn ~value:"napoli" "//name";
    Pattern.of_path_exn ~value:"pizza" "//item";
  ]

let render_teids db bs =
  String.concat ";"
    (List.map Eid.Temporal.to_string
       (List.sort Eid.Temporal.compare (Scan.to_teids db bs)))

(* Every retained version of every document, reconstructed and printed. *)
let render_docs db =
  let buf = Buffer.create 256 in
  List.iter
    (fun id ->
      let d = Db.doc db id in
      Buffer.add_string buf
        (Printf.sprintf "#%d %s [%d,%d) del=%s\n" id (Docstore.url d)
           (Docstore.first_version d) (Docstore.version_count d)
           (match Docstore.deleted_at d with
            | Some dts -> Timestamp.to_string dts
            | None -> "-"));
      for v = Docstore.first_version d to Docstore.version_count d - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  v%d@%s %s\n" v
             (Timestamp.to_string (Docstore.ts_of_version d v))
             (Print.to_string (Vnode.to_xml (Db.reconstruct db id v))))
      done)
    (Db.doc_ids db);
  Buffer.contents buf

(* Scans at the current state, across all versions, and at probe instants,
   plus element lifetimes — everything a reader observes. *)
let render_queries ?(ts_probes = []) db =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "scan %s -> %s\n" (Pattern.to_string p)
           (render_teids db (Scan.pattern_scan db p)));
      let all = Scan.tpattern_scan_all db p in
      Buffer.add_string buf
        (Printf.sprintf "all %s -> %s\n" (Pattern.to_string p)
           (render_teids db all));
      List.iter
        (fun t ->
          Buffer.add_string buf
            (Printf.sprintf "at %s -> %s\n" (Timestamp.to_string t)
               (render_teids db (Scan.tpattern_scan db p t))))
        ts_probes;
      List.iter
        (fun teid ->
          Buffer.add_string buf
            (Printf.sprintf "life %s cre=%s del=%s\n"
               (Eid.Temporal.to_string teid)
               (match Lifetime.cre_time db teid with
                | Some t -> Timestamp.to_string t
                | None -> "-")
               (match Lifetime.del_time db teid with
                | Some t -> Timestamp.to_string t
                | None -> "-")))
        (List.sort Eid.Temporal.compare (Scan.to_teids db all)))
    patterns;
  Buffer.contents buf

let fingerprint ?ts_probes db = render_docs db ^ render_queries ?ts_probes db

(* --- snapshot unit tests -------------------------------------------------- *)

let test_snapshot_isolation () =
  let db = Db.create () in
  ignore
    (Db.insert_document db ~url:"a" ~ts:(op_ts 0)
       (parse "<doc><name>napoli</name></doc>"));
  ignore
    (Db.insert_document db ~url:"b" ~ts:(op_ts 1)
       (parse "<doc><item>pizza</item></doc>"));
  let snap = Db.snapshot db in
  let before = fingerprint snap in
  Alcotest.(check bool) "is_snapshot" true (Db.is_snapshot snap);
  Alcotest.(check int) "pinned" 1 (Db.pinned_snapshots db);
  Alcotest.(check (option int)) "watermark" (Some 2) (Db.snapshot_watermark snap);
  (* the writer moves on: update, delete, insert a fresh document *)
  ignore
    (Db.update_document db ~url:"a" ~ts:(op_ts 2)
       (parse "<doc><name>rome</name></doc>"));
  Db.delete_document db ~url:"b" ~ts:(op_ts 3) ();
  ignore
    (Db.insert_document db ~url:"c" ~ts:(op_ts 4)
       (parse "<doc><name>napoli</name></doc>"));
  Alcotest.(check string) "snapshot unmoved" before (fingerprint snap);
  Alcotest.(check int) "snapshot doc count" 2 (Db.document_count snap);
  Alcotest.(check int) "live doc count" 3 (Db.document_count db);
  Alcotest.(check bool) "post-watermark doc invisible" true
    (Db.doc_opt snap 2 = None);
  (* mutators raise on the snapshot *)
  (match Db.update_document snap ~url:"a" ~ts:(op_ts 5) (parse "<doc/>") with
   | _ -> Alcotest.fail "snapshot update must raise"
   | exception Invalid_argument _ -> ());
  (match Db.vacuum ~retention:(Config.with_retention ~keep_versions:1 Config.default).Config.retention snap with
   | _ -> Alcotest.fail "snapshot vacuum must raise"
   | exception Invalid_argument _ -> ());
  Db.release snap;
  Db.release snap (* idempotent *);
  Alcotest.(check int) "unpinned" 0 (Db.pinned_snapshots db)

let test_snapshot_of_snapshot_raises () =
  let db = Db.create () in
  ignore (Db.insert_document db ~url:"a" ~ts:(op_ts 0) (parse "<doc/>"));
  let snap = Db.snapshot db in
  (match Db.snapshot snap with
   | _ -> Alcotest.fail "snapshot of snapshot must raise"
   | exception Invalid_argument _ -> ());
  Db.release snap

(* --- prefix-db oracle (serial) ------------------------------------------- *)

let gen_history = Gen_xml.gen_history ~max_versions:4

let arb_prefix_case =
  QCheck.make
    ~print:(fun ((a0, asuccs), (b0, bsuccs), h, cut) ->
      Printf.sprintf "h=%d cut=%d\ndoc a:\n%s\ndoc b:\n%s" h cut
        (String.concat "\n---\n" (List.map Print.to_string (a0 :: asuccs)))
        (String.concat "\n---\n" (List.map Print.to_string (b0 :: bsuccs))))
    QCheck.Gen.(quad gen_history gen_history (int_range 0 3) (int_range 1 40))

let prop_snapshot_equals_prefix_db =
  QCheck.Test.make ~count:60
    ~name:"snapshot at k ops = fresh db of first k ops" arb_prefix_case
    (fun (a, b, h, cut) ->
      let ops = ops_of (a, b, h) in
      let n = List.length ops in
      let cut = 1 + (cut mod n) in
      let db = Db.create () in
      List.iteri (fun i op -> if i < cut then apply db i op) ops;
      let snap = Db.snapshot db in
      List.iteri (fun i op -> if i >= cut then apply db i op) ops;
      let oracle = replay Config.default (List.filteri (fun i _ -> i < cut) ops) in
      let ts_probes = List.init (n + 1) op_ts in
      let got = fingerprint ~ts_probes snap in
      let want = fingerprint ~ts_probes oracle in
      Db.release snap;
      if String.equal got want then true
      else QCheck.Test.fail_reportf "snapshot:\n%s\noracle:\n%s" got want)

(* --- concurrent readers vs prefix oracle ---------------------------------- *)

(* Deterministic workload: every operation — including a delete — commits
   and advances the watermark by one, so watermark w maps to the first w
   operations. *)
let concurrent_ops =
  let st = Random.State.make [| 0xC0FFEE |] in
  let a0, asuccs = gen_history st in
  let b0, bsuccs = Gen_xml.gen_history ~max_versions:6 st in
  Ins ("a", a0) :: Ins ("b", b0)
  :: interleave
       (List.map (fun x -> Upd ("a", x)) asuccs)
       (List.map (fun x -> Upd ("b", x)) bsuccs)

(* Reader domains snapshot-and-query while the writer replays [ops]; each
   observation is (watermark, fingerprint, snapshot handle).  After the
   join, every fingerprint must equal the prefix oracle's, and re-running
   the same queries on the same handle must be byte-identical. *)
let concurrent_differential ~config ~oracle_config () =
  let ops = concurrent_ops in
  let n = List.length ops in
  let ts_probes = List.init (n + 1) op_ts in
  let db = Db.create ~config () in
  (* version 0 exists before readers start, so snapshots are never empty *)
  apply db 0 (List.hd ops);
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        List.iteri (fun i op -> if i > 0 then apply db i op) ops;
        Atomic.set stop true)
  in
  let reader () =
    (* always at least one observation, even if the writer already won the
       race — a snapshot of the finished state is still checked *)
    let rec loop acc k =
      if k = 0 || (acc <> [] && Atomic.get stop) then acc
      else begin
        let snap = Db.snapshot db in
        let w = Option.get (Db.snapshot_watermark snap) in
        loop ((w, fingerprint ~ts_probes snap, snap) :: acc) (k - 1)
      end
    in
    loop [] 6
  in
  let readers = Array.init 4 (fun _ -> Domain.spawn reader) in
  let observations =
    Array.to_list (Array.map Domain.join readers) |> List.concat
  in
  Domain.join writer;
  Alcotest.(check bool) "some observations" true (observations <> []);
  let oracle_cache : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let oracle w =
    match Hashtbl.find_opt oracle_cache w with
    | Some fp -> fp
    | None ->
      let odb = replay oracle_config (List.filteri (fun i _ -> i < w) ops) in
      let fp = fingerprint ~ts_probes odb in
      Hashtbl.replace oracle_cache w fp;
      fp
  in
  List.iter
    (fun (w, fp, snap) ->
      Alcotest.(check string)
        (Printf.sprintf "concurrent read at watermark %d = serial replay" w)
        (oracle w) fp;
      (* stability: the same snapshot re-queried after the writer finished *)
      Alcotest.(check string)
        (Printf.sprintf "re-read at watermark %d is identical" w)
        fp
        (fingerprint ~ts_probes snap);
      Db.release snap)
    observations;
  Alcotest.(check int) "all released" 0 (Db.pinned_snapshots db)

let test_concurrent_vs_oracle () =
  concurrent_differential ~config:Config.default
    ~oracle_config:Config.default ()

(* Version cache under concurrent readers: the cached database must answer
   exactly like a cache-disabled oracle (cache-on ≡ cache-off). *)
let test_concurrent_cache_on_equals_off () =
  concurrent_differential ~config:Config.default
    ~oracle_config:{ Config.default with Config.version_cache_bytes = 0 }
    ()

(* --- vacuum hold-back ----------------------------------------------------- *)

let test_vacuum_holdback () =
  let db = Db.create () in
  ignore
    (Db.insert_document db ~url:"a" ~ts:(op_ts 0)
       (parse "<doc><name>napoli</name></doc>"));
  for i = 1 to 4 do
    ignore
      (Db.update_document db ~url:"a" ~ts:(op_ts i)
         (parse (Printf.sprintf "<doc><name>napoli</name><item>v%d</item></doc>" i)))
  done;
  let snap = Db.snapshot db in
  let before = fingerprint snap in
  Alcotest.(check (option int)) "hold-back horizon" (Some 5)
    (Db.oldest_pinned_watermark db);
  (* a document born after the pin is fair game even while the pin holds *)
  ignore
    (Db.insert_document db ~url:"b" ~ts:(op_ts 5)
       (parse "<doc><item>pizza</item></doc>"));
  for i = 6 to 8 do
    ignore
      (Db.update_document db ~url:"b" ~ts:(op_ts i)
         (parse (Printf.sprintf "<doc><item>b%d</item></doc>" i)))
  done;
  let retention = (Config.with_retention ~keep_versions:1 Config.default).Config.retention in
  let r1 = Db.vacuum ~retention db in
  Alcotest.(check int) "only the post-pin document squashed" 1
    r1.Db.vr_docs_squashed;
  Alcotest.(check int) "pinned chain untouched" 0
    (Docstore.first_version (Db.doc db 0));
  (* every version the snapshot could see still reads back identically *)
  Alcotest.(check string) "snapshot unaffected by vacuum" before
    (fingerprint snap);
  Db.release snap;
  let r2 = Db.vacuum ~retention db in
  Alcotest.(check bool) "released pin frees the chain" true
    (r2.Db.vr_versions_dropped > 0);
  Alcotest.(check int) "live chain truncated" 4
    (Docstore.first_version (Db.doc db 0))

(* --- group commit: journal level ------------------------------------------ *)

let mk_pool () =
  let disk = Disk.create () in
  (disk, Buffer_pool.create ~capacity:32 disk)

let test_group_batch_one_fsync () =
  let disk, pool = mk_pool () in
  let j = Journal.create pool in
  let _t1 = Journal.append_buffered j "one" in
  let _t2 = Journal.append_buffered j "two" in
  let t3 = Journal.append_buffered j "three" in
  Alcotest.(check int) "nothing durable yet" 0 (Journal.synced_count j);
  Alcotest.(check int) "no fsync yet" 0 (Buffer_pool.stats pool).Io_stats.fsyncs;
  Journal.group_sync j ~sleep:(fun () -> ()) t3;
  Alcotest.(check int) "whole batch durable" 3 (Journal.synced_count j);
  Alcotest.(check int) "one fsync for three records" 1
    (Buffer_pool.stats pool).Io_stats.fsyncs;
  let r = Journal.recover (Buffer_pool.create ~capacity:32 disk) in
  Alcotest.(check (list string)) "all recovered" [ "one"; "two"; "three" ]
    r.Journal.records

(* Tear the batch flush at every disk write: recovery must surface a strict
   record prefix, and stranded waiters must crash out rather than hang. *)
let test_group_crash_all_or_prefix () =
  let payloads = [ "r0"; String.make 9_000 'x'; "r2"; String.make 5_000 'y' ] in
  (* reference run: how many page writes does the full batch take? *)
  let _, pool0 = mk_pool () in
  let j0 = Journal.create pool0 in
  let tickets0 = List.map (Journal.append_buffered j0) payloads in
  Journal.group_sync j0 ~sleep:(fun () -> ()) (List.hd (List.rev tickets0));
  let total_writes = Journal.page_count j0 in
  Alcotest.(check bool) "multi-page batch" true (total_writes > 4);
  for fail = 1 to total_writes do
    let disk, pool = mk_pool () in
    let j = Journal.create pool in
    let tickets = List.map (Journal.append_buffered j) payloads in
    let last = List.hd (List.rev tickets) in
    Disk.fail_after_writes disk fail;
    (match Journal.group_sync j ~sleep:(fun () -> ()) last with
     | () -> Alcotest.failf "crash point %d: sync did not crash" fail
     | exception Disk.Crash -> ());
    (* a waiter arriving after the crash must not hang on a dead journal *)
    (match Journal.group_sync j ~sleep:(fun () -> ()) (List.hd tickets) with
     | () ->
       if Journal.synced_count j < List.hd tickets then
         Alcotest.failf "crash point %d: dead journal did not raise" fail
     | exception Disk.Crash -> ());
    Disk.clear_fault disk;
    let r = Journal.recover (Buffer_pool.create ~capacity:32 disk) in
    let recovered = r.Journal.records in
    let k = List.length recovered in
    Alcotest.(check bool)
      (Printf.sprintf "crash point %d: prefix length %d" fail k)
      true
      (k <= List.length payloads);
    Alcotest.(check (list string))
      (Printf.sprintf "crash point %d: records are a strict prefix" fail)
      (List.filteri (fun i _ -> i < k) payloads)
      recovered
  done

(* --- group commit: database level ----------------------------------------- *)

let group_config =
  Config.with_group_commit ~window_us:0 (Config.durable Config.default)

(* Single committer, window 0: group commit must be observationally
   identical to the plain engine — same answers, clean recovery. *)
let test_db_group_commit_equivalence () =
  let ops = concurrent_ops in
  let gdb = replay group_config ops in
  let pdb = replay (Config.durable Config.default) ops in
  Alcotest.(check string) "group = plain answers" (fingerprint pdb)
    (fingerprint gdb);
  (match Db.verify gdb with
   | Ok _ -> ()
   | Error errs -> Alcotest.failf "verify: %s" (String.concat "; " errs));
  let rdb = Db.recover (Db.disk gdb) group_config in
  Alcotest.(check string) "recovered = committed" (fingerprint gdb)
    (fingerprint rdb)

(* Concurrent committers on one group-committed database: all commits land,
   the batch leader amortizes durability points, recovery sees everything. *)
let test_db_group_commit_concurrent () =
  let config =
    Config.with_group_commit ~window_us:500 (Config.durable Config.default)
  in
  let db = Db.create ~config () in
  let committers = 8 and commits_each = 4 in
  let worker k () =
    let url = Printf.sprintf "doc-%d" k in
    ignore (Db.insert_document db ~url (parse "<doc><name>napoli</name></doc>"));
    for i = 1 to commits_each - 1 do
      ignore
        (Db.update_document db ~url
           (parse (Printf.sprintf "<doc><name>napoli</name><item>v%d</item></doc>" i)))
    done
  in
  let handles = Array.init committers (fun k -> Domain.spawn (worker k)) in
  Array.iter Domain.join handles;
  let commits = committers * commits_each in
  Alcotest.(check int) "all commits landed" commits (Db.stats db).Db.commits;
  let fsyncs = (Db.io_stats db).Io_stats.fsyncs in
  Alcotest.(check bool)
    (Printf.sprintf "fsyncs (%d) never exceed commits (%d)" fsyncs commits)
    true
    (fsyncs <= commits && fsyncs >= 1);
  (* make everything durable, then recover and compare *)
  (match Db.journal db with
   | Some j -> Journal.sync j
   | None -> Alcotest.fail "journal expected");
  let rdb = Db.recover (Db.disk db) config in
  Alcotest.(check int) "recovered documents" committers (Db.document_count rdb);
  (match Db.verify rdb with
   | Ok _ -> ()
   | Error errs -> Alcotest.failf "verify: %s" (String.concat "; " errs))

(* Crash sweep over a group-committed workload (window 0): recovery must
   land on a strict prefix of the operation sequence — with buffering, a
   crash may lose the in-flight operation, never a committed prefix. *)
let test_db_group_crash_sweep () =
  let ops = concurrent_ops in
  let n_ops = List.length ops in
  let ts_probes = List.init (n_ops + 1) op_ts in
  let ref_db = Db.create ~config:group_config () in
  let writes_before = (Db.io_stats ref_db).Io_stats.page_writes in
  let fps = Array.make (n_ops + 1) "" in
  fps.(0) <- fingerprint ~ts_probes ref_db;
  List.iteri
    (fun i op ->
      apply ref_db i op;
      fps.(i + 1) <- fingerprint ~ts_probes ref_db)
    ops;
  let op_writes = (Db.io_stats ref_db).Io_stats.page_writes - writes_before in
  for i = 1 to op_writes do
    let db = Db.create ~config:group_config () in
    Disk.fail_after_writes (Db.disk db) i;
    let crashed_at = ref (-1) in
    let rec run k = function
      | [] -> ()
      | op :: rest -> (
        match apply db k op with
        | () -> run (k + 1) rest
        | exception Disk.Crash -> crashed_at := k)
    in
    run 0 ops;
    let k = !crashed_at in
    if k < 0 then
      Alcotest.failf "write %d of %d did not crash the workload" i op_writes;
    Disk.clear_fault (Db.disk db);
    let rdb = Db.recover (Db.disk db) group_config in
    (match Db.verify rdb with
     | Ok _ -> ()
     | Error errs ->
       Alcotest.failf "crash point %d (op %d): verify failed: %s" i k
         (String.concat "; " errs));
    let fp = fingerprint ~ts_probes rdb in
    let is_prefix = ref false in
    for j = 0 to k + 1 do
      if j <= n_ops && String.equal fp fps.(j) then is_prefix := true
    done;
    if not !is_prefix then
      Alcotest.failf
        "crash point %d: recovered state is not an operation prefix (op %d)" i k
  done

(* --- rwlock -------------------------------------------------------------- *)

let test_rwlock_basics () =
  let l = Rwlock.create () in
  Rwlock.with_read l (fun () ->
      (* read re-entry on the same domain *)
      Rwlock.with_read l (fun () -> ()));
  Rwlock.with_write l (fun () ->
      (* reads nest freely inside the write lock *)
      Rwlock.with_read l (fun () -> ()));
  (match Rwlock.with_read l (fun () -> Rwlock.with_write l (fun () -> ())) with
   | () -> Alcotest.fail "read->write upgrade must raise"
   | exception Invalid_argument _ -> ());
  (* mutual exclusion: counter increments under the write lock from many
     domains never lose updates *)
  let counter = ref 0 in
  let worker () =
    for _ = 1 to 1_000 do
      Rwlock.with_write l (fun () -> incr counter)
    done
  in
  let hs = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join hs;
  Alcotest.(check int) "no lost updates" 4_000 !counter

(* --- metrics registry under concurrency ----------------------------------- *)

let test_metrics_concurrent () =
  Txq_obs.Metrics.reset ();
  let worker () =
    for _ = 1 to 10_000 do
      Txq_obs.Metrics.incr "mvcc.test.counter";
      Txq_obs.Metrics.observe "mvcc.test.histo" 1.0
    done
  in
  let hs = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join hs;
  Alcotest.(check (option int)) "counter complete" (Some 40_000)
    (Txq_obs.Metrics.counter_value "mvcc.test.counter");
  Txq_obs.Metrics.reset ()

let () =
  Alcotest.run "mvcc"
    [
      ( "snapshots",
        [
          Alcotest.test_case "isolation and pinning" `Quick
            test_snapshot_isolation;
          Alcotest.test_case "snapshot of snapshot raises" `Quick
            test_snapshot_of_snapshot_raises;
          QCheck_alcotest.to_alcotest prop_snapshot_equals_prefix_db;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "readers vs prefix oracle" `Slow
            test_concurrent_vs_oracle;
          Alcotest.test_case "cache-on = cache-off" `Slow
            test_concurrent_cache_on_equals_off;
          Alcotest.test_case "rwlock" `Quick test_rwlock_basics;
          Alcotest.test_case "metrics registry" `Quick test_metrics_concurrent;
        ] );
      ( "vacuum hold-back",
        [ Alcotest.test_case "pinned snapshot survives vacuum" `Quick
            test_vacuum_holdback ] );
      ( "group commit",
        [
          Alcotest.test_case "batch = one fsync" `Quick
            test_group_batch_one_fsync;
          Alcotest.test_case "torn batch is all-or-prefix" `Slow
            test_group_crash_all_or_prefix;
          Alcotest.test_case "db: group = plain engine" `Quick
            test_db_group_commit_equivalence;
          Alcotest.test_case "db: concurrent committers" `Quick
            test_db_group_commit_concurrent;
          Alcotest.test_case "db: crash sweep (window 0)" `Slow
            test_db_group_crash_sweep;
        ] );
    ]
