(* Unit tests for the observability layer: span trees, trace sinks, and
   the metrics registry's log2 histogram buckets. *)

open Txq_obs

(* Every test owns the process-wide tracing state. *)
let fresh () =
  Trace.set_sink None;
  Metrics.reset ()

(* --- span trees ----------------------------------------------------------- *)

let test_disabled_is_transparent () =
  fresh ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let r = Trace.with_span "outer" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 r;
  (* attribute calls outside any span are no-ops, not crashes *)
  Trace.add_count "deltas_applied" 3;
  Trace.add_attr "k" (Span.Int 1);
  Alcotest.(check (option int)) "no histogram recorded" None
    (Option.map (fun h -> h.Metrics.h_count) (Metrics.histogram_value "span.outer"))

let test_nesting_and_attrs () =
  fresh ();
  let sink, read = Trace.ring_sink ~capacity:8 in
  Trace.set_sink (Some sink);
  let r =
    Trace.with_span "outer" ~attrs:[ ("query", Span.Str "q1") ] (fun () ->
        Trace.with_span "child_a" (fun () ->
            Trace.add_count "deltas_applied" 2;
            Trace.add_count "deltas_applied" 3);
        Trace.with_span "child_b" (fun () -> Trace.add_count "postings" 7);
        "done")
  in
  Alcotest.(check string) "result" "done" r;
  match read () with
  | [ root ] ->
    Alcotest.(check string) "root name" "outer" root.Span.sp_name;
    Alcotest.(check int) "tree size" 3 (Span.count root);
    Alcotest.(check (list string)) "children in order" [ "child_a"; "child_b" ]
      (List.map (fun c -> c.Span.sp_name) root.Span.sp_children);
    (match Span.attr root "query" with
    | Some (Span.Str "q1") -> ()
    | _ -> Alcotest.fail "root attr lost");
    let a = Option.get (Span.find root "child_a") in
    Alcotest.(check (option int)) "add_count accumulates" (Some 5)
      (Span.int_attr a "deltas_applied");
    Alcotest.(check (option int)) "sibling attr separate" (Some 7)
      (Span.int_attr (Option.get (Span.find root "child_b")) "postings");
    Alcotest.(check (list (pair string int))) "sum over tree"
      [ ("deltas_applied", 5); ("postings", 7) ]
      (Span.sum_int_attrs [ root ]);
    Alcotest.(check bool) "durations measured" true
      (Span.dur_us root >= Span.dur_us a && Span.dur_us a >= 0.0)
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let test_exception_still_finishes () =
  fresh ();
  let sink, read = Trace.ring_sink ~capacity:4 in
  Trace.set_sink (Some sink);
  (try
     Trace.with_span "outer" (fun () ->
         Trace.with_span "boom" (fun () -> failwith "boom"))
   with Failure _ -> ());
  match read () with
  | [ root ] ->
    Alcotest.(check int) "both spans closed" 2 (Span.count root);
    (* a later span must not become a child of the dead tree *)
    Trace.with_span "after" (fun () -> ());
    Alcotest.(check int) "next root is standalone" 2 (List.length (read ()))
  | _ -> Alcotest.fail "root span lost on exception"

let test_ring_capacity () =
  fresh ();
  let sink, read = Trace.ring_sink ~capacity:3 in
  Trace.set_sink (Some sink);
  for i = 1 to 5 do
    Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check (list string)) "keeps the newest 3" [ "s3"; "s4"; "s5" ]
    (List.map (fun sp -> sp.Span.sp_name) (read ()))

let test_collect () =
  fresh ();
  (* collect works with tracing disabled... *)
  let r, roots = Trace.collect (fun () -> Trace.with_span "q" (fun () -> 7)) in
  Alcotest.(check int) "value" 7 r;
  Alcotest.(check (list string)) "captured" [ "q" ]
    (List.map (fun sp -> sp.Span.sp_name) roots);
  Alcotest.(check bool) "disabled again afterwards" false (Trace.enabled ());
  (* ...and does not leak into an installed sink *)
  let sink, read = Trace.ring_sink ~capacity:4 in
  Trace.set_sink (Some sink);
  let _, inner = Trace.collect (fun () -> Trace.with_span "hidden" (fun () -> ())) in
  Alcotest.(check int) "collector saw it" 1 (List.length inner);
  Alcotest.(check int) "outer sink did not" 0 (List.length (read ()));
  Alcotest.(check bool) "sink restored" true (Trace.enabled ())

let test_span_json () =
  fresh ();
  let _, roots =
    Trace.collect (fun () ->
        Trace.with_span "root" ~attrs:[ ("word", Span.Str "a\"b") ] (fun () ->
            Trace.with_span "kid" (fun () -> Trace.add_count "n" 1)))
  in
  let json = Span.to_json (List.hd roots) in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    hl >= nl
    && Seq.exists
         (fun i -> String.equal (String.sub json i nl) needle)
         (Seq.init (hl - nl + 1) Fun.id)
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" needle) true
        (contains needle))
    [ "\"name\":\"root\""; "\"word\":\"a\\\"b\""; "\"children\":["; "\"n\":1" ]

(* --- metrics -------------------------------------------------------------- *)

let test_counters_and_gauges () =
  fresh ();
  Metrics.incr "a.b";
  Metrics.incr ~by:4 "a.b";
  Metrics.set_gauge "g" 17;
  Metrics.set_gauge "g" 9;
  Alcotest.(check (option int)) "counter" (Some 5) (Metrics.counter_value "a.b");
  Alcotest.(check (option int)) "gauge keeps last" (Some 9)
    (Metrics.gauge_value "g");
  Alcotest.(check (option int)) "unknown" None (Metrics.counter_value "nope");
  Metrics.reset ();
  Alcotest.(check (option int)) "reset" None (Metrics.counter_value "a.b")

let test_histogram_buckets () =
  fresh ();
  (* bucket 0 = [0,1); bucket i = [2^(i-1), 2^i) *)
  List.iter
    (fun (v, want) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %g" v) want
        (Metrics.bucket_of v))
    [
      (0.0, 0); (0.5, 0); (-3.0, 0); (Float.nan, 0);
      (1.0, 1); (1.9, 1);
      (2.0, 2); (3.99, 2);
      (4.0, 3); (1024.0, 11); (1e300, Metrics.buckets - 1);
    ];
  Alcotest.(check (float 1e-9)) "bucket_lo 0" 0.0 (Metrics.bucket_lo 0);
  Alcotest.(check (float 1e-9)) "bucket_lo 3" 4.0 (Metrics.bucket_lo 3);
  List.iter (Metrics.observe "h") [ 0.5; 1.5; 3.0; 3.5; 100.0 ];
  match Metrics.histogram_value "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 5 h.Metrics.h_count;
    Alcotest.(check (float 1e-6)) "sum" 108.5 h.Metrics.h_sum;
    Alcotest.(check int) "bucket [0,1)" 1 h.Metrics.h_buckets.(0);
    Alcotest.(check int) "bucket [1,2)" 1 h.Metrics.h_buckets.(1);
    Alcotest.(check int) "bucket [2,4)" 2 h.Metrics.h_buckets.(2);
    Alcotest.(check int) "bucket [64,128)" 1 h.Metrics.h_buckets.(7)

let test_span_latency_histogram () =
  fresh ();
  Trace.set_sink (Some Trace.null_sink);
  Trace.with_span "op" (fun () -> ());
  Trace.with_span "op" (fun () -> ());
  match Metrics.histogram_value "span.op" with
  | Some h -> Alcotest.(check int) "two samples" 2 h.Metrics.h_count
  | None -> Alcotest.fail "span latency not recorded"

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled is transparent" `Quick
            test_disabled_is_transparent;
          Alcotest.test_case "nesting and attrs" `Quick test_nesting_and_attrs;
          Alcotest.test_case "exception safety" `Quick
            test_exception_still_finishes;
          Alcotest.test_case "ring capacity" `Quick test_ring_capacity;
          Alcotest.test_case "collect" `Quick test_collect;
          Alcotest.test_case "span json" `Quick test_span_json;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_counters_and_gauges;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "span latency histogram" `Quick
            test_span_latency_histogram;
        ] );
    ]
