(* The cost-based planner, held to its one contract: planner-on and
   planner-off evaluation are byte-identical — over random statement and
   algebra corpora, on live handles and on MVCC snapshots, whichever
   index configuration is maintained.  Alongside the differentials: unit
   checks of the O(1) FTI cardinality counters the planner reads, an
   estimation-accuracy property (smoothed error within a fixed factor),
   and a regression that a statement and its rewritten form pick the same
   plan. *)

module Xml = Txq_xml.Xml
module Print = Txq_xml.Print
module Parse = Txq_xml.Parse
module Timestamp = Txq_temporal.Timestamp
module Config = Txq_db.Config
module Db = Txq_db.Db
module Fti = Txq_fti.Fti
module Vnode = Txq_vxml.Vnode
module Pattern = Txq_core.Pattern
module Scan = Txq_core.Scan
module Stats = Txq_planner.Stats
module Planner = Txq_planner.Planner
module Gen_xml = Txq_test_support.Gen_xml
open Txq_query

let ts = Timestamp.of_string
let parse = Parse.parse_exn

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  nl = 0
  || (hl >= nl
      && Seq.exists
           (fun i -> String.equal (String.sub hay i nl) needle)
           (Seq.init (hl - nl + 1) Fun.id))
let day = 86_400
let base_seconds = Timestamp.to_seconds (ts "01/06/2001")
let op_ts i = Timestamp.of_seconds (base_seconds + ((i + 1) * day))

(* --- FTI counter units ---------------------------------------------------- *)

(* Freeze aggressively so the counters span both tiers. *)
let fti_config =
  { Config.default with fti_mode = Config.Fti_both; fti_segment_postings = 8 }

let counter_db () =
  let db = Db.create ~config:fti_config () in
  ignore
    (Db.insert_document db ~url:"a" ~ts:(op_ts 0)
       (parse "<doc><name>napoli</name><item>pizza</item></doc>"));
  ignore
    (Db.insert_document db ~url:"b" ~ts:(op_ts 1)
       (parse "<doc><name>rome</name></doc>"));
  ignore
    (Db.update_document db ~url:"a" ~ts:(op_ts 2)
       (parse "<doc><name>napoli</name></doc>"));
  db

let test_word_counters () =
  let db = counter_db () in
  let fti = Db.fti db in
  (* "item" tag: one posting ever, closed by the update *)
  Alcotest.(check int) "item history" 1 (Fti.word_postings fti "item" ~kind:Vnode.Tag);
  Alcotest.(check int) "item open" 0 (Fti.word_open_postings fti "item" ~kind:Vnode.Tag);
  (* "name" tag: one per document, both still open *)
  Alcotest.(check int) "name history" 2 (Fti.word_postings fti "name" ~kind:Vnode.Tag);
  Alcotest.(check int) "name open" 2 (Fti.word_open_postings fti "name" ~kind:Vnode.Tag);
  (* word occurrences are counted under their own kind *)
  Alcotest.(check int) "pizza word history" 1
    (Fti.word_postings fti "pizza" ~kind:Vnode.Word);
  Alcotest.(check int) "pizza tag history" 0
    (Fti.word_postings fti "pizza" ~kind:Vnode.Tag);
  Alcotest.(check int) "absent word" 0
    (Fti.word_postings fti "absent" ~kind:Vnode.Word)

let test_doc_fences () =
  let db = counter_db () in
  let fti = Db.fti db in
  (* per-document slices must sum to the corpus-wide counter *)
  List.iter
    (fun (word, kind) ->
      let total = Fti.word_postings fti word ~kind in
      let summed =
        List.fold_left
          (fun n doc -> n + Fti.doc_word_postings fti word ~kind ~doc)
          0 (Db.doc_ids db)
      in
      Alcotest.(check int) (word ^ " fence sum") total summed)
    [ ("name", Vnode.Tag); ("item", Vnode.Tag); ("napoli", Vnode.Word);
      ("pizza", Vnode.Word); ("rome", Vnode.Word) ]

let test_fti_stats_invariants () =
  let db = counter_db () in
  let s = Fti.stats (Db.fti db) in
  Alcotest.(check int) "tiers sum" s.Fti.fs_postings
    (s.Fti.fs_tail_postings + s.Fti.fs_frozen_postings);
  Alcotest.(check bool) "open bounded" true
    (s.Fti.fs_open_postings <= s.Fti.fs_postings);
  Alcotest.(check bool) "froze something" true (s.Fti.fs_freezes > 0);
  Alcotest.(check bool) "words positive" true (s.Fti.fs_words > 0)

(* Vacuum recounts from the surviving postings. *)
let test_counters_survive_vacuum () =
  let db = counter_db () in
  ignore
    (Db.vacuum
       ~retention:{ Config.keep_newer_than = None; keep_versions = Some 1 }
       db);
  let fti = Db.fti db in
  List.iter
    (fun (word, kind) ->
      let total = Fti.word_postings fti word ~kind in
      let summed =
        List.fold_left
          (fun n doc -> n + Fti.doc_word_postings fti word ~kind ~doc)
          0 (Db.doc_ids db)
      in
      Alcotest.(check int) (word ^ " post-vacuum fence sum") total summed;
      Alcotest.(check bool)
        (word ^ " post-vacuum open bound")
        true
        (Fti.word_open_postings fti word ~kind <= total))
    [ ("name", Vnode.Tag); ("item", Vnode.Tag); ("napoli", Vnode.Word) ]

(* --- random histories ------------------------------------------------------ *)

type op = Ins of string * Xml.t | Upd of string * Xml.t | Del of string

let interleave a b =
  let rec go acc = function
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys -> go (y :: x :: acc) (xs, ys)
  in
  go [] (a, b)

let replay config ops =
  let db = Db.create ~config () in
  List.iteri
    (fun i op ->
      match op with
      | Ins (u, x) -> ignore (Db.insert_document db ~url:u ~ts:(op_ts i) x)
      | Upd (u, x) -> ignore (Db.update_document db ~url:u ~ts:(op_ts i) x)
      | Del u -> Db.delete_document db ~url:u ~ts:(op_ts i) ())
    ops;
  db

let ops_of ((a0, asuccs), (b0, bsuccs), h) =
  Ins ("a", a0) :: Ins ("b", b0)
  :: interleave
       (List.map (fun x -> Upd ("a", x)) asuccs)
       (List.map (fun x -> Upd ("b", x)) bsuccs)
  @ (if h land 1 = 1 then [ Del "b" ] else [])
  @ if h land 2 = 2 then [ Del "a" ] else []

(* --- statement corpus ------------------------------------------------------ *)

(* Every plan choice has statements that exercise it: multiway patterns
   with pushdown word tests (leg ordering), absent words (the
   provably-empty skip), snapshot/current/history modes (per-mode
   estimates), CREATE/DELETE TIME (lifetime strategy), multi-source
   products, and algebra trees for operand ordering and annihilation. *)
let statements =
  [
    {|SELECT R FROM doc("a")//name R|};
    {|SELECT COUNT(R) FROM doc("a")//item R|};
    {|SELECT R FROM doc("a")[NOW]//name R|};
    {|SELECT R FROM doc("b")[03/06/2001]//item R|};
    {|SELECT TIME(R), R FROM doc("a")[EVERY]//name R|};
    {|SELECT R FROM doc("a")//review R WHERE R/name = "napoli"|};
    {|SELECT R FROM doc("a")[EVERY]//review R WHERE R/item = "pizza" AND R/name = "napoli"|};
    {|SELECT R FROM doc("a")//review R WHERE R/name = "nosuchword"|};
    {|SELECT R FROM doc("nosuchdoc")//name R|};
    {|SELECT R1/name, R2 FROM doc("a")//review R1, doc("b")//item R2|};
    {|SELECT CREATE TIME(R), DELETE TIME(R) FROM doc("a")[EVERY]//item R|};
    {|SELECT CREATE TIME(R) FROM doc("b")//name R|};
    {|SELECT DISTINCT R/name FROM collection("*")[EVERY]//review R|};
    {|SELECT COUNT(R) FROM collection("*")[02/06/2001]//name R|};
    {|SELECT R FROM doc("a")[01/06/2001 + 2 DAYS]//name R WHERE 01/06/2001 < 02/06/2001|};
    {|doc("a")//name UNION doc("b")//item|};
    {|doc("a")//name INTERSECT doc("b")//name|};
    {|doc("a")//name EXCEPT doc("a")//nosuchtag|};
    {|doc("a")//nosuchtag EXCEPT doc("a")//name|};
    {|doc("a")//name JOIN ON DOC doc("b")//item|};
    {|doc("a")//name LEFTJOIN ON ALWAYS doc("b")//item|};
    {|doc("a")//name SEMIJOIN ON ANCESTOR doc("a")//item|};
    {|doc("a")//name ANTIJOIN ON DOC doc("b")//name|};
    {|doc("a")//name JOIN ON DOC doc("a")//nosuchtag|};
    {|COUNT (doc("a")//name UNION doc("b")//name)|};
    {|COUNT BY DOC (collection("*")//name = "napoli")|};
  ]

let run_to_string db q =
  match Exec.run_string db q with
  | Ok xml -> "ok: " ^ Print.to_string xml
  | Error e -> "error: " ^ Exec.error_to_string e

let check_differential ~what db_on db_off =
  List.for_all
    (fun q ->
      let on = run_to_string db_on q
      and off = run_to_string db_off q in
      if not (String.equal on off) then
        QCheck.Test.fail_reportf "%s diverged on %s\nplanner on:  %s\nplanner off: %s"
          what q on off;
      true)
    statements

let gen_history = Gen_xml.gen_history ~max_versions:4

let print_case ((a0, asuccs), (b0, bsuccs), h, fti_mode) =
  Printf.sprintf "h=%d fti=%d\ndoc a:\n%s\ndoc b:\n%s" h
    (match fti_mode with
     | Config.Fti_versions -> 0
     | Config.Fti_deltas -> 1
     | Config.Fti_both -> 2
     | Config.Fti_none -> 3)
    (String.concat "\n---\n" (List.map Print.to_string (a0 :: asuccs)))
    (String.concat "\n---\n" (List.map Print.to_string (b0 :: bsuccs)))

let arb_case =
  QCheck.make ~print:print_case
    QCheck.Gen.(
      quad gen_history gen_history (int_range 0 3)
        (oneofl [ Config.Fti_versions; Config.Fti_deltas; Config.Fti_both ]))

let config_pair fti_mode =
  let base =
    { Config.default with fti_mode; fti_segment_postings = 8; domains = 2 }
  in
  (Config.with_planner true base, Config.with_planner false base)

(* The tentpole differential: same operations replayed into two databases
   whose configurations differ only in [planner]; every statement must
   produce the same bytes. *)
let prop_planner_differential =
  QCheck.Test.make ~count:30 ~name:"planner on ≡ planner off" arb_case
    (fun (a, b, h, fti_mode) ->
      let on, off = config_pair fti_mode in
      let ops = ops_of (a, b, h) in
      check_differential ~what:"live db" (replay on ops) (replay off ops))

(* The same contract on pinned MVCC snapshots, where Current-mode
   estimates must fall back to history counts and lifetime strategies to
   the snapshot-safe default. *)
let prop_planner_differential_snapshot =
  QCheck.Test.make ~count:20 ~name:"planner on ≡ off (snapshots)" arb_case
    (fun (a, b, h, fti_mode) ->
      let on, off = config_pair fti_mode in
      let ops = ops_of (a, b, h) in
      let snap_on = Db.snapshot (replay on ops) in
      let snap_off = Db.snapshot (replay off ops) in
      Fun.protect
        ~finally:(fun () ->
          Db.release snap_on;
          Db.release snap_off)
        (fun () -> check_differential ~what:"snapshot" snap_on snap_off))

(* Without any index, planner and literal paths must fail identically. *)
let test_differential_fti_none () =
  let on, off = config_pair Config.Fti_none in
  let ops =
    [ Ins ("a", parse "<doc><name>x</name></doc>");
      Ins ("b", parse "<doc><item>y</item></doc>") ]
  in
  ignore (check_differential ~what:"fti none" (replay on ops) (replay off ops))

(* --- estimation accuracy ---------------------------------------------------- *)

let accuracy_k = 32.0

let smoothed_err est act =
  let e = float_of_int (est + 1) and a = float_of_int (act + 1) in
  Float.max (e /. a) (a /. e)

let prop_estimation_accuracy =
  QCheck.Test.make ~count:30 ~name:"scan estimates within k×" arb_case
    (fun (a, b, h, fti_mode) ->
      let config, _ = config_pair fti_mode in
      let db = replay config (ops_of (a, b, h)) in
      let p = Planner.create db in
      if not (Stats.has_a1 (Planner.stats p)) then true
      else
        List.for_all
          (fun path ->
            match Pattern.of_path path with
            | Error e -> QCheck.Test.fail_reportf "pattern %s: %s" path e
            | Ok pattern ->
              let checks =
                [ ( Planner.Every,
                    List.length (Scan.tpattern_scan_all db pattern) );
                  ( Planner.Current,
                    List.length (Scan.pattern_scan db pattern) );
                  ( Planner.At,
                    List.length (Scan.tpattern_scan db pattern (op_ts 2)) ) ]
              in
              List.for_all
                (fun (mode, actual) ->
                  let est = Planner.est_scan p mode pattern in
                  let err = smoothed_err est actual in
                  if err > accuracy_k then
                    QCheck.Test.fail_reportf
                      "%s (%s): est %d vs actual %d (err %.1f > %.1f)" path
                      (Planner.mode_to_string mode)
                      est actual err accuracy_k;
                  true)
                checks)
          [ "//name"; "//item"; "//price"; "//review"; "//b" ])

(* --- rewrite/planner interaction ------------------------------------------- *)

(* A statement and its rewritten form must pick the same plan: EXPLAIN
   re-runs the rewrite before costing, so pre-rewriting by hand changes
   nothing. *)
let test_rewritten_same_plan () =
  let config, _ = config_pair Config.Fti_both in
  let db =
    replay config
      [ Ins ("a", parse "<doc><name>napoli</name></doc>");
        Upd ("a", parse "<doc><name>napoli</name><item>pizza</item></doc>");
        Ins ("b", parse "<doc><name>rome</name></doc>") ]
  in
  List.iter
    (fun q ->
      match Parser.parse_statement q with
      | Error e -> Alcotest.failf "parse %s: %s" q e
      | Ok stmt ->
        let original = Exec.explain_statement db stmt in
        let rewritten =
          Exec.explain_statement db (Rewrite.statement ~now:(Db.now db) stmt)
        in
        Alcotest.(check string) ("same plan: " ^ q) original rewritten)
    [
      {|SELECT R FROM doc("a")[NOW]//name R|};
      {|SELECT R FROM doc("a")[01/06/2001 + 2 DAYS]//name R|};
      {|SELECT R FROM doc("a")//review R WHERE 01/06/2001 < 02/06/2001 AND R/name = "napoli"|};
      {|SELECT DISTINCT COUNT(R) FROM doc("a")[EVERY]//item R|};
      {|doc("a")//name JOIN ON DOC doc("b")//name|};
    ]

(* EXPLAIN surfaces the estimates; EXPLAIN ANALYZE surfaces est vs actual
   with the error ratio column. *)
let test_explain_shows_estimates () =
  let config, _ = config_pair Config.Fti_both in
  let db =
    replay config
      [ Ins ("a", parse "<doc><name>napoli</name><item>pizza</item></doc>") ]
  in
  (match Exec.explain_string db {|SELECT R FROM doc("a")//name R|} with
   | Error e -> Alcotest.failf "explain: %s" (Exec.error_to_string e)
   | Ok plan ->
     Alcotest.(check bool) "estimate line" true (contains plan "estimate:"));
  match Exec.explain_analyze_string db {|SELECT R FROM doc("a")//name R|} with
  | Error e -> Alcotest.failf "analyze: %s" (Exec.error_to_string e)
  | Ok report ->
    Alcotest.(check bool) "est_err column" true (contains report "est_err")

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "planner"
    [
      ( "fti counters",
        [
          Alcotest.test_case "word counters" `Quick test_word_counters;
          Alcotest.test_case "doc fences" `Quick test_doc_fences;
          Alcotest.test_case "stats invariants" `Quick test_fti_stats_invariants;
          Alcotest.test_case "vacuum recount" `Quick test_counters_survive_vacuum;
        ] );
      ( "differential",
        [
          qt prop_planner_differential;
          qt prop_planner_differential_snapshot;
          Alcotest.test_case "fti none" `Quick test_differential_fti_none;
        ] );
      ("accuracy", [ qt prop_estimation_accuracy ]);
      ( "plans",
        [
          Alcotest.test_case "rewritten same plan" `Quick test_rewritten_same_plan;
          Alcotest.test_case "explain estimates" `Quick test_explain_shows_estimates;
        ] );
    ]
