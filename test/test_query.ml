module Xml = Txq_xml.Xml
module Parse = Txq_xml.Parse
module Print = Txq_xml.Print
module Timestamp = Txq_temporal.Timestamp
module Glob = Txq_core.Glob
open Txq_query

let parse_xml = Parse.parse_exn
let ts = Timestamp.of_string
let url = "guide.com/restaurants.xml"

let fig1_v0 =
  parse_xml
    "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>"

let fig1_v1 =
  parse_xml
    "<guide><restaurant><name>Napoli</name><price>15</price></restaurant><restaurant><name>Akropolis</name><price>13</price></restaurant></guide>"

let fig1_v2 =
  parse_xml
    "<guide><restaurant><name>Napoli</name><price>18</price></restaurant><restaurant><name>Akropolis</name><price>13</price></restaurant></guide>"

let fig1_db () =
  let db = Txq_db.Db.create () in
  ignore (Txq_db.Db.insert_document db ~url ~ts:(ts "01/01/2001") fig1_v0);
  ignore (Txq_db.Db.update_document db ~url ~ts:(ts "15/01/2001") fig1_v1);
  ignore (Txq_db.Db.update_document db ~url ~ts:(ts "31/01/2001") fig1_v2);
  db

let run db q =
  match Exec.run_string db q with
  | Ok xml -> xml
  | Error e -> Alcotest.failf "query failed: %s" (Exec.error_to_string e)

let results_of xml = Xml.find_children xml "result"

(* --- parser ------------------------------------------------------------- *)

let roundtrip q = Ast.to_string (Parser.parse_exn q)

let test_parse_q1 () =
  Alcotest.(check string) "Q1"
    "SELECT R FROM doc(\"guide.com/restaurants.xml\")[26/01/2001]/guide/restaurant R"
    (roundtrip
       {|SELECT R FROM doc("guide.com/restaurants.xml")[26/01/2001]/guide/restaurant R|})

let test_parse_q3 () =
  Alcotest.(check string) "Q3"
    "SELECT TIME(R), R/price FROM doc(\"guide.com/restaurants.xml\")[EVERY]/guide/restaurant R WHERE R/name = \"Napoli\""
    (roundtrip
       {|SELECT TIME(R), R/price
         FROM doc("guide.com/restaurants.xml")[EVERY]/guide/restaurant R
         WHERE R/name="Napoli"|})

let test_parse_relative_time () =
  Alcotest.(check string) "NOW arithmetic"
    "SELECT R FROM doc(\"u\")[NOW - 2 WEEKS]/r R"
    (roundtrip {|SELECT R FROM doc("u")[NOW - 14 DAYS]/r R|});
  Alcotest.(check string) "date arithmetic"
    "SELECT R FROM doc(\"u\")[26/01/2001 + 2 WEEKS]/r R"
    (roundtrip {|SELECT R FROM doc("u")[26/01/2001 + 2 WEEKS]/r R|})

let test_parse_operators () =
  Alcotest.(check string) "all comparison forms"
    "SELECT R1 FROM doc(\"u\")/r R1, doc(\"u\")[26/01/2001]/r R2 WHERE ((R1 == R2 AND R1/x ~ R2/x) OR NOT (R1/p != 10))"
    (roundtrip
       {|SELECT R1 FROM doc("u")/r R1, doc("u")[26/01/2001]/r R2
         WHERE R1 == R2 AND R1/x ~ R2/x OR NOT (R1/p != 10)|})

let test_parse_functions () =
  Alcotest.(check string) "temporal functions"
    "SELECT CREATE TIME(R), DELETE TIME(R), PREVIOUS(R), DIFF(R,R), COUNT(R) FROM doc(\"u\")//r R"
    (roundtrip
       {|SELECT CREATE TIME(R), DELETE TIME(R), PREVIOUS(R), DIFF(R, R), COUNT(R)
         FROM doc("u")//r R|})

let test_parse_errors () =
  List.iter
    (fun q ->
      match Parser.parse q with
      | Ok _ -> Alcotest.failf "expected parse error for %s" q
      | Error _ -> ())
    [
      "";
      "SELECT";
      "SELECT R";
      "SELECT R FROM r R";
      {|SELECT R FROM doc("u")[BAD]/r R|};
      {|SELECT R FROM doc("u")/r R WHERE|};
      {|SELECT R FROM doc("u")/r R trailing|};
      {|SELECT R FROM doc("u")[32/01/2001]/r R|};
    ]

(* --- Q1: snapshot ------------------------------------------------------- *)

let test_q1 () =
  let db = fig1_db () in
  let out =
    run db {|SELECT R FROM doc("guide.com/restaurants.xml")[26/01/2001]/guide/restaurant R|}
  in
  let results = results_of out in
  Alcotest.(check int) "two restaurants" 2 (List.length results);
  Alcotest.(check string) "rendered results"
    "<results><result><restaurant><name>Napoli</name><price>15</price></restaurant></result><result><restaurant><name>Akropolis</name><price>13</price></restaurant></result></results>"
    (Print.to_string out)

let test_snapshot_now_relative () =
  let db = fig1_db () in
  (* clock now is 31/01/2001; NOW - 10 DAYS = 21/01 -> v1 *)
  let out =
    run db
      {|SELECT R/price FROM doc("guide.com/restaurants.xml")[NOW - 10 DAYS]/guide/restaurant R WHERE R/name = "Napoli"|}
  in
  Alcotest.(check string) "price was 15"
    "<results><result><price>15</price></result></results>"
    (Print.to_string out)

(* --- Q2: aggregate ------------------------------------------------------- *)

let test_q2 () =
  let db = fig1_db () in
  let out =
    run db
      {|SELECT COUNT(R) FROM doc("guide.com/restaurants.xml")[26/01/2001]/guide/restaurant R|}
  in
  Alcotest.(check string) "count 2" "<results><result>2</result></results>"
    (Print.to_string out);
  (* the Q2 point: no reconstruction happened *)
  Txq_db.Db.reset_io db;
  ignore
    (run db
       {|SELECT COUNT(R) FROM doc("guide.com/restaurants.xml")[26/01/2001]/guide/restaurant R|});
  Alcotest.(check int) "no reconstructions" 0
    (Txq_db.Db.stats db).Txq_db.Db.reconstructions

let test_sum () =
  let db = fig1_db () in
  let out =
    run db
      {|SELECT SUM(R/price) FROM doc("guide.com/restaurants.xml")/guide/restaurant R|}
  in
  Alcotest.(check string) "current prices sum to 31"
    "<results><result>31</result></results>" (Print.to_string out)

(* --- Q3: history ----------------------------------------------------------- *)

let test_q3 () =
  let db = fig1_db () in
  let out =
    run db
      {|SELECT TIME(R), R/price
        FROM doc("guide.com/restaurants.xml")[EVERY]/guide/restaurant R
        WHERE R/name = "Napoli"|}
  in
  (* Napoli's restaurant element has two distinct states: price 15 (from
     01/01) and price 18 (from 31/01) *)
  Alcotest.(check string) "price history"
    "<results><result><time>01/01/2001</time><price>15</price></result><result><time>31/01/2001</time><price>18</price></result></results>"
    (Print.to_string out)

let test_every_without_predicate () =
  let db = fig1_db () in
  let out =
    run db
      {|SELECT TIME(R), R/name FROM doc("guide.com/restaurants.xml")[EVERY]/guide/restaurant R|}
  in
  (* Napoli element: two states (15, 18); Akropolis: one state *)
  Alcotest.(check int) "three element versions" 3
    (List.length (results_of out))

(* --- WHERE semantics -------------------------------------------------------- *)

let test_price_filter () =
  let db = fig1_db () in
  let out =
    run db
      {|SELECT R/name FROM doc("guide.com/restaurants.xml")[26/01/2001]/guide/restaurant R WHERE R/price < 14|}
  in
  Alcotest.(check string) "only Akropolis under 14"
    "<results><result><name>Akropolis</name></result></results>"
    (Print.to_string out)

let test_contains () =
  let db = fig1_db () in
  let out =
    run db
      {|SELECT R/name FROM doc("guide.com/restaurants.xml")/guide/restaurant R WHERE R/name CONTAINS "krop"|}
  in
  Alcotest.(check string) "substring match"
    "<results><result><name>Akropolis</name></result></results>"
    (Print.to_string out)

let test_create_time_predicate () =
  let db = fig1_db () in
  (* restaurants created on or after 11/01/2001: only Akropolis (15/01) *)
  let out =
    run db
      {|SELECT R/name FROM doc("guide.com/restaurants.xml")/guide/restaurant R
        WHERE CREATE TIME(R) >= 11/01/2001|}
  in
  Alcotest.(check string) "only Akropolis is new enough"
    "<results><result><name>Akropolis</name></result></results>"
    (Print.to_string out)

let test_identity_operator () =
  let db = fig1_db () in
  (* the restaurant element named Napoli at 05/01 and at 01/02 is the same
     element (==), even though its content changed *)
  let out =
    run db
      {|SELECT R1/name FROM doc("guide.com/restaurants.xml")[05/01/2001]/guide/restaurant R1,
                           doc("guide.com/restaurants.xml")/guide/restaurant R2
        WHERE R1 == R2 AND R1/price < R2/price|}
  in
  Alcotest.(check string) "price increased for the same element"
    "<results><result><name>Napoli</name></result></results>"
    (Print.to_string out)

let test_deep_vs_shallow_equality () =
  let db = fig1_db () in
  (* deep =: Akropolis unchanged between v1 and v2, Napoli changed *)
  let out =
    run db
      {|SELECT R1/name FROM doc("guide.com/restaurants.xml")[26/01/2001]/guide/restaurant R1,
                           doc("guide.com/restaurants.xml")/guide/restaurant R2
        WHERE R1 = R2|}
  in
  Alcotest.(check string) "deep-equal across versions: only Akropolis"
    "<results><result><name>Akropolis</name></result></results>"
    (Print.to_string out)

let test_similarity_operator () =
  let db = fig1_db () in
  (* Napoli-v1 vs Napoli-current differ only in price: similar *)
  let out =
    run db
      {|SELECT R1/name FROM doc("guide.com/restaurants.xml")[26/01/2001]/guide/restaurant R1,
                           doc("guide.com/restaurants.xml")/guide/restaurant R2
        WHERE R1 ~ R2 AND R1/name = R2/name AND R1/price < R2/price|}
  in
  Alcotest.(check string) "price increase found via similarity"
    "<results><result><name>Napoli</name></result></results>"
    (Print.to_string out)

(* --- PREVIOUS / CURRENT / DIFF ------------------------------------------------ *)

let test_previous () =
  let db = fig1_db () in
  let out =
    run db
      {|SELECT PREVIOUS(R) FROM doc("guide.com/restaurants.xml")/guide/restaurant R
        WHERE R/name = "Napoli"|}
  in
  (* previous version of the current Napoli element: price 15 *)
  Alcotest.(check string) "previous Napoli"
    "<results><result><restaurant><name>Napoli</name><price>15</price></restaurant></result></results>"
    (Print.to_string out)

let test_current_of_snapshot () =
  let db = fig1_db () in
  let out =
    run db
      {|SELECT DISTINCT CURRENT(R)/name FROM doc("guide.com/restaurants.xml")[05/01/2001]/guide/restaurant R|}
  in
  Alcotest.(check string) "current version of a historical binding"
    "<results><result><name>Napoli</name></result></results>"
    (Print.to_string out)

let test_diff_in_query () =
  let db = fig1_db () in
  let out =
    run db
      {|SELECT DIFF(PREVIOUS(R), R) FROM doc("guide.com/restaurants.xml")/guide/restaurant R
        WHERE R/name = "Napoli"|}
  in
  match results_of out with
  | [result] -> (
    match Xml.find_child result "delta" with
    | Some delta ->
      let updates = Xml.find_children delta "update" in
      Alcotest.(check int) "one update in the edit script" 1 (List.length updates)
    | None -> Alcotest.fail "expected a <delta> result")
  | other -> Alcotest.failf "expected one result, got %d" (List.length other)

let test_next () =
  let db = fig1_db () in
  let out =
    run db
      {|SELECT NEXT(R)/price FROM doc("guide.com/restaurants.xml")[05/01/2001]/guide/restaurant R|}
  in
  (* next version after v0 for the Napoli restaurant is v1, price still 15 *)
  Alcotest.(check string) "next of v0"
    "<results><result><price>15</price></result></results>"
    (Print.to_string out);
  (* NEXT of the current version is null *)
  let out =
    run db
      {|SELECT NEXT(R) FROM doc("guide.com/restaurants.xml")/guide/restaurant R
        WHERE R/name = "Napoli"|}
  in
  Alcotest.(check string) "next of current is null"
    "<results><result><null/></result></results>" (Print.to_string out)

let test_delete_time () =
  let db = Txq_db.Db.create () in
  ignore
    (Txq_db.Db.insert_document db ~url:"m" ~ts:(ts "01/01/2001")
       (parse_xml "<g><r><name>doomed</name></r><r><name>kept</name></r></g>"));
  ignore
    (Txq_db.Db.update_document db ~url:"m" ~ts:(ts "10/01/2001")
       (parse_xml "<g><r><name>kept</name></r></g>"));
  (* bind at a time when doomed still existed *)
  let out =
    run db
      {|SELECT R/name, DELETE TIME(R) FROM doc("m")[05/01/2001]/g/r R|}
  in
  Alcotest.(check string) "delete times"
    "<results><result><name>doomed</name><time>10/01/2001</time></result><result><name>kept</name><null/></result></results>"
    (Print.to_string out)

let test_avg () =
  let db = fig1_db () in
  let out =
    run db
      {|SELECT AVG(R/price) FROM doc("guide.com/restaurants.xml")[26/01/2001]/guide/restaurant R|}
  in
  Alcotest.(check string) "avg of 15 and 13" "<results><result>14</result></results>"
    (Print.to_string out)

let test_every_includes_deleted_doc_history () =
  let db = fig1_db () in
  Txq_db.Db.delete_document db ~url ~ts:(ts "01/02/2001") ();
  (* EVERY still sees the whole history of the deleted document *)
  let out =
    run db
      {|SELECT DISTINCT R/name FROM doc("guide.com/restaurants.xml")[EVERY]/guide/restaurant R|}
  in
  Alcotest.(check int) "both names across history" 2
    (List.length (results_of out));
  (* but the current snapshot is empty *)
  let current =
    run db {|SELECT R FROM doc("guide.com/restaurants.xml")/guide/restaurant R|}
  in
  Alcotest.(check string) "no current rows" "<results/>" (Print.to_string current)

let test_descendant_source_path () =
  let db = fig1_db () in
  let out =
    run db {|SELECT R FROM doc("guide.com/restaurants.xml")//name R|}
  in
  Alcotest.(check int) "names via descendant source" 2
    (List.length (results_of out))

(* --- roots, distinct, multiple sources ------------------------------------------ *)

let test_root_binding () =
  let db = fig1_db () in
  let out =
    run db {|SELECT COUNT(D) FROM doc("guide.com/restaurants.xml")[EVERY] D|}
  in
  Alcotest.(check string) "three document versions"
    "<results><result>3</result></results>" (Print.to_string out)

let test_distinct () =
  let db = fig1_db () in
  let out =
    run db
      {|SELECT DISTINCT R/name FROM doc("guide.com/restaurants.xml")[EVERY]/guide/restaurant R|}
  in
  Alcotest.(check int) "two distinct names" 2 (List.length (results_of out))

let test_unknown_variable () =
  let db = fig1_db () in
  match
    Exec.run_string db {|SELECT X FROM doc("guide.com/restaurants.xml")/guide/restaurant R|}
  with
  | Error (Exec.Unknown_variable "X") -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Exec.error_to_string e)
  | Ok _ -> Alcotest.fail "expected unknown-variable error"

(* --- explain -------------------------------------------------------------------- *)

let test_explain_operators () =
  let db = fig1_db () in
  let explain q =
    match Exec.explain_string db q with
    | Ok plan -> plan
    | Error e -> Alcotest.fail (Exec.error_to_string e)
  in
  let contains hay needle =
    let hl = String.length hay and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let check q fragment =
    let plan = explain q in
    Alcotest.(check bool)
      (Printf.sprintf "plan mentions %S" fragment)
      true (contains plan fragment)
  in
  check {|SELECT R FROM doc("u")/guide/restaurant R|} "PatternScan (current";
  check {|SELECT R FROM doc("u")[26/01/2001]/guide/restaurant R|} "TPatternScan (snapshot";
  check {|SELECT R FROM doc("u")[EVERY]/guide/restaurant R|} "TPatternScanAll";
  check {|SELECT D FROM doc("u") D|} "delta-index root binding";
  check {|SELECT COUNT(R) FROM doc("u")/guide/restaurant R|} "Q2 fast path";
  check
    {|SELECT R FROM doc("u")/guide/restaurant R WHERE R/name = "Napoli"|}
    "pushdown: 1 equality"

(* --- collections --------------------------------------------------------------- *)

let test_glob () =
  let m p s = Glob.matches ~pattern:p s in
  Alcotest.(check bool) "exact" true (m "a/b.xml" "a/b.xml");
  Alcotest.(check bool) "star suffix" true (m "news.com/*" "news.com/politics.xml");
  Alcotest.(check bool) "star middle" true (m "news.com/*.xml" "news.com/a.xml");
  Alcotest.(check bool) "two stars" true (m "*city*" "guide.org/city-3.xml");
  Alcotest.(check bool) "star matches empty" true (m "ab*" "ab");
  Alcotest.(check bool) "mismatch" false (m "news.com/*.xml" "news.com/a.html");
  Alcotest.(check bool) "no partial prefix" false (m "a.xml" "aa.xml")

let collection_db () =
  let db = Txq_db.Db.create () in
  List.iteri
    (fun i (u, price) ->
      ignore
        (Txq_db.Db.insert_document db ~url:u
           ~ts:(Timestamp.add (ts "01/01/2001") (Txq_temporal.Duration.hours i))
           (parse_xml
              (Printf.sprintf
                 "<guide><restaurant><name>R%d</name><price>%d</price></restaurant></guide>"
                 i price))))
    [("a.com/north.xml", 10); ("a.com/south.xml", 20); ("b.org/east.xml", 30)];
  db

let test_collection_source () =
  let db = collection_db () in
  let out =
    run db {|SELECT COUNT(R) FROM collection("a.com/*")/guide/restaurant R|}
  in
  Alcotest.(check string) "two docs in a.com" "<results><result>2</result></results>"
    (Print.to_string out);
  let all =
    run db {|SELECT SUM(R/price) FROM collection("*")/guide/restaurant R|}
  in
  Alcotest.(check string) "whole warehouse" "<results><result>60</result></results>"
    (Print.to_string all)

let test_collection_snapshot () =
  (* documents created on successive days; a snapshot mid-history sees only
     the ones that existed *)
  let db = Txq_db.Db.create () in
  List.iteri
    (fun i u ->
      ignore
        (Txq_db.Db.insert_document db ~url:u
           ~ts:(Timestamp.add (ts "01/01/2001") (Txq_temporal.Duration.days i))
           (parse_xml "<guide><restaurant><name>x</name></restaurant></guide>")))
    ["a.com/one.xml"; "a.com/two.xml"; "a.com/three.xml"];
  let out =
    run db {|SELECT COUNT(R) FROM collection("a.com/*")[02/01/2001]/guide/restaurant R|}
  in
  Alcotest.(check string) "two documents existed on 02/01"
    "<results><result>2</result></results>" (Print.to_string out)

let test_collection_stratum_agrees () =
  let db = collection_db () in
  let s = Stratum.create () in
  List.iteri
    (fun i (u, price) ->
      Stratum.insert_document s ~url:u
        ~ts:(Timestamp.add (ts "01/01/2001") (Txq_temporal.Duration.hours i))
        (parse_xml
           (Printf.sprintf
              "<guide><restaurant><name>R%d</name><price>%d</price></restaurant></guide>"
              i price)))
    [("a.com/north.xml", 10); ("a.com/south.xml", 20); ("b.org/east.xml", 30)];
  let q = {|SELECT COUNT(R) FROM collection("a.com/*")/guide/restaurant R|} in
  match Stratum.run_string s q with
  | Ok b ->
    Alcotest.(check string) "native = stratum" (Print.to_string (run db q))
      (Print.to_string b)
  | Error e -> Alcotest.fail (Exec.error_to_string e)

(* --- stratum baseline -------------------------------------------------------------- *)

let fig1_stratum () =
  let s = Stratum.create () in
  Stratum.insert_document s ~url ~ts:(ts "01/01/2001") fig1_v0;
  Stratum.update_document s ~url ~ts:(ts "15/01/2001") fig1_v1;
  Stratum.update_document s ~url ~ts:(ts "31/01/2001") fig1_v2;
  s

let run_stratum s q =
  match Stratum.run_string s q with
  | Ok xml -> xml
  | Error e -> Alcotest.failf "stratum query failed: %s" (Exec.error_to_string e)

let test_stratum_q1_agrees () =
  let db = fig1_db () and s = fig1_stratum () in
  let q =
    {|SELECT R FROM doc("guide.com/restaurants.xml")[26/01/2001]/guide/restaurant R|}
  in
  Alcotest.(check string) "same results" (Print.to_string (run db q))
    (Print.to_string (run_stratum s q))

let test_stratum_counts_work () =
  let s = fig1_stratum () in
  Alcotest.(check string) "count at snapshot"
    "<results><result>2</result></results>"
    (Print.to_string
       (run_stratum s
          {|SELECT COUNT(R) FROM doc("guide.com/restaurants.xml")[26/01/2001]/guide/restaurant R|}))

let test_stratum_rejects_identity () =
  let s = fig1_stratum () in
  match
    Stratum.run_string s
      {|SELECT CREATE TIME(R) FROM doc("guide.com/restaurants.xml")/guide/restaurant R|}
  with
  | Error (Exec.Unsupported _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Exec.error_to_string e)
  | Ok _ -> Alcotest.fail "stratum should not support CREATE TIME"

let test_stratum_work_counter () =
  let s = fig1_stratum () in
  Stratum.reset_counters s;
  ignore
    (run_stratum s
       {|SELECT R FROM doc("guide.com/restaurants.xml")[EVERY]/guide/restaurant R|});
  Alcotest.(check int) "parsed every version" 3 (Stratum.versions_parsed s)

(* property: native executor ≡ stratum on random snapshot queries *)
let prop_native_equals_stratum =
  QCheck.Test.make ~count:30 ~name:"native ≡ stratum on snapshot queries"
    (Txq_test_support.Gen_xml.arb_history ~max_versions:5)
    (fun (doc0, versions) ->
      let db = Txq_db.Db.create () in
      let s = Stratum.create () in
      let base = Timestamp.of_date ~day:1 ~month:1 ~year:2001 in
      ignore (Txq_db.Db.insert_document db ~url:"u" ~ts:base doc0);
      Stratum.insert_document s ~url:"u" ~ts:base doc0;
      List.iteri
        (fun i v ->
          let t = Timestamp.add base (Txq_temporal.Duration.days (i + 1)) in
          ignore (Txq_db.Db.update_document db ~url:"u" ~ts:t v);
          Stratum.update_document s ~url:"u" ~ts:t v)
        versions;
      let days = List.length versions in
      List.for_all
        (fun day ->
          List.for_all
            (fun q ->
              let date =
                Timestamp.to_string (Timestamp.add base (Txq_temporal.Duration.days day))
              in
              let query = Printf.sprintf q date in
              let a = Exec.run_string db query in
              let b = Stratum.run_string s query in
              match (a, b) with
              | Ok xa, Ok xb ->
                (* compare result multisets; row order and attribute order
                   are both insignificant *)
                let rec canon node =
                  match node with
                  | Xml.Text _ -> node
                  | Xml.Element e ->
                    Xml.Element
                      {
                        e with
                        Xml.attrs =
                          List.sort
                            (fun x y ->
                              String.compare x.Xml.attr_name y.Xml.attr_name)
                            e.Xml.attrs;
                        children = List.map canon e.Xml.children;
                      }
                in
                let key xml =
                  List.sort String.compare
                    (List.map
                       (fun n -> Print.to_string (canon n))
                       (Xml.children xml))
                in
                key xa = key xb
              | _ -> false)
            [
              {|SELECT COUNT(R) FROM doc("u")[%s]//name R|};
              {|SELECT R FROM doc("u")[%s]//price R|};
              {|SELECT R/name FROM doc("u")[%s]//item R WHERE R/name CONTAINS "napoli"|};
            ])
        (List.init (days + 1) Fun.id))

(* property: every parseable WHERE predicate executes without an exception,
   on both executors and every source qualifier.  [Error _] results are
   fine (Unsupported, Unknown_variable); an escaping exception is not.
   Regression for the comparison dispatch: before the Ast.Ordered split,
   executor matches like [C_cmp (_, (Eq|Neq|...), _)] carried duplicated
   catch-all [assert false] arms that odd operand/operator pairings could
   reach. *)
let prop_predicates_never_raise =
  let ops = [| "="; "!="; "<"; "<="; ">"; ">="; "=="; "~"; "CONTAINS" |] in
  let operands =
    [|
      "R"; "R/name"; "R/price"; "R/absent"; {|"Napoli"|}; {|""|}; "15"; "13.5";
      "26/01/2001"; "NOW"; "TIME(R)"; "CREATE TIME(R)"; "DELETE TIME(R)";
      "PREVIOUS(R)"; "CURRENT(R)"; "COUNT(R)"; "SUM(R/price)";
    |]
  in
  let quals = [| ""; "[26/01/2001]"; "[EVERY]" |] in
  let arb =
    QCheck.make
      ~print:(fun (op, (a, b), qual) ->
        Printf.sprintf "%s %s %s (source%s)" a op b
          (if qual = "" then " current" else " " ^ qual))
      QCheck.Gen.(
        triple (oneofa ops) (pair (oneofa operands) (oneofa operands))
          (oneofa quals))
  in
  let db = lazy (fig1_db ()) in
  let stratum = lazy (fig1_stratum ()) in
  QCheck.Test.make ~count:500 ~name:"parseable predicates never raise" arb
    (fun (op, (lhs, rhs), qual) ->
      let q =
        Printf.sprintf
          {|SELECT R FROM doc("guide.com/restaurants.xml")%s/guide/restaurant R WHERE %s %s %s|}
          qual lhs op rhs
      in
      match Parser.parse q with
      | Error _ -> QCheck.assume_fail () (* not parseable: out of scope *)
      | Ok _ ->
        (match Exec.run_string (Lazy.force db) q with Ok _ | Error _ -> ());
        (match Stratum.run_string (Lazy.force stratum) q with
        | Ok _ | Error _ -> ());
        true)

let () =
  Alcotest.run "query"
    [
      ( "parser",
        [
          Alcotest.test_case "Q1" `Quick test_parse_q1;
          Alcotest.test_case "Q3" `Quick test_parse_q3;
          Alcotest.test_case "relative time" `Quick test_parse_relative_time;
          Alcotest.test_case "operators" `Quick test_parse_operators;
          Alcotest.test_case "functions" `Quick test_parse_functions;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "paper_queries",
        [
          Alcotest.test_case "Q1 snapshot" `Quick test_q1;
          Alcotest.test_case "Q2 count" `Quick test_q2;
          Alcotest.test_case "Q3 history" `Quick test_q3;
          Alcotest.test_case "NOW-relative snapshot" `Quick test_snapshot_now_relative;
          Alcotest.test_case "SUM" `Quick test_sum;
          Alcotest.test_case "EVERY unfiltered" `Quick test_every_without_predicate;
        ] );
      ( "where",
        [
          Alcotest.test_case "numeric filter" `Quick test_price_filter;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "create-time predicate" `Quick test_create_time_predicate;
          Alcotest.test_case "identity ==" `Quick test_identity_operator;
          Alcotest.test_case "deep equality" `Quick test_deep_vs_shallow_equality;
          Alcotest.test_case "similarity ~" `Quick test_similarity_operator;
        ] );
      ( "navigation",
        [
          Alcotest.test_case "PREVIOUS" `Quick test_previous;
          Alcotest.test_case "NEXT" `Quick test_next;
          Alcotest.test_case "CURRENT of snapshot" `Quick test_current_of_snapshot;
          Alcotest.test_case "DIFF" `Quick test_diff_in_query;
          Alcotest.test_case "DELETE TIME" `Quick test_delete_time;
          Alcotest.test_case "AVG" `Quick test_avg;
          Alcotest.test_case "EVERY over deleted doc" `Quick
            test_every_includes_deleted_doc_history;
          Alcotest.test_case "descendant source path" `Quick
            test_descendant_source_path;
        ] );
      ( "shape",
        [
          Alcotest.test_case "root binding" `Quick test_root_binding;
          Alcotest.test_case "DISTINCT" `Quick test_distinct;
          Alcotest.test_case "unknown variable" `Quick test_unknown_variable;
        ] );
      ("explain", [Alcotest.test_case "operator mapping" `Quick test_explain_operators]);
      ( "collections",
        [
          Alcotest.test_case "glob matching" `Quick test_glob;
          Alcotest.test_case "collection source" `Quick test_collection_source;
          Alcotest.test_case "collection snapshot" `Quick test_collection_snapshot;
          Alcotest.test_case "stratum agrees" `Quick test_collection_stratum_agrees;
        ] );
      ( "stratum",
        [
          Alcotest.test_case "Q1 agrees" `Quick test_stratum_q1_agrees;
          Alcotest.test_case "counts" `Quick test_stratum_counts_work;
          Alcotest.test_case "identity unsupported" `Quick
            test_stratum_rejects_identity;
          Alcotest.test_case "work counter" `Quick test_stratum_work_counter;
          QCheck_alcotest.to_alcotest prop_native_equals_stratum;
        ] );
      ( "dispatch",
        [QCheck_alcotest.to_alcotest prop_predicates_never_raise] );
    ]
