(* Crash consistency: the commit journal, deterministic fault injection and
   Db.recover.

   The centrepiece is the exhaustive crash-point sweep: a scripted workload
   of 20+ commits is first run uncrashed to count its disk writes N and to
   fingerprint the database after every operation; then, for every
   i in 1..N, a fresh database runs the same workload with the disk armed to
   tear its i-th write, is recovered from the surviving pages alone, and the
   recovered state must equal the state before or after the interrupted
   operation — never a mixture — with the temporal operators (Reconstruct,
   DocHistory, TPatternScan) agreeing with the uncrashed reference. *)

module Xml = Txq_xml.Xml
module Parse = Txq_xml.Parse
module Print = Txq_xml.Print
module Vnode = Txq_vxml.Vnode
module Codec = Txq_vxml.Codec
module Delta = Txq_vxml.Delta
module Diff = Txq_vxml.Diff
module Xid = Txq_vxml.Xid
module Xidmap = Txq_vxml.Xidmap
module Eid = Txq_vxml.Eid
module Timestamp = Txq_temporal.Timestamp
module Interval = Txq_temporal.Interval
module Disk = Txq_store.Disk
module Buffer_pool = Txq_store.Buffer_pool
module Journal = Txq_store.Journal
module Io_stats = Txq_store.Io_stats
module Config = Txq_db.Config
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Journal_record = Txq_db.Journal_record
module History = Txq_core.History
module Scan = Txq_core.Scan
module Pattern = Txq_core.Pattern
module Gen_xml = Txq_test_support.Gen_xml
module Gen_store = Txq_test_support.Gen_store

let ts = Timestamp.of_string
let parse = Parse.parse_exn

(* --- journal unit tests (store level) ----------------------------------- *)

let mk_pool () =
  let disk = Disk.create () in
  (disk, Buffer_pool.create ~capacity:32 disk)

let test_journal_roundtrip () =
  let disk, pool = mk_pool () in
  let j = Journal.create pool in
  let payloads = [ "alpha"; String.make 5000 'x'; "omega" ] in
  List.iter (Journal.append j) payloads;
  Alcotest.(check int) "records" 3 (Journal.record_count j);
  let r = Journal.recover (Buffer_pool.create ~capacity:32 disk) in
  Alcotest.(check (list string)) "recovered payloads" payloads r.Journal.records;
  Alcotest.(check int)
    "page directory" (Journal.page_count j)
    (List.length r.Journal.journal_pages)

let test_journal_empty_disk () =
  let disk, _ = mk_pool () in
  let r = Journal.recover (Buffer_pool.create ~capacity:32 disk) in
  Alcotest.(check (list string)) "no records" [] r.Journal.records;
  Alcotest.(check int) "no pages" 0 (List.length r.Journal.journal_pages)

(* A torn append never surfaces as a record, its sequence number is burned,
   and the journal keeps accepting appends after recovery. *)
let test_journal_torn_append () =
  let disk, pool = mk_pool () in
  let j = Journal.create pool in
  Journal.append j "first";
  (* the multi-page record tears on its second page *)
  Disk.fail_after_writes disk 2;
  (match Journal.append j (String.make 9000 'y') with
   | () -> Alcotest.fail "expected a crash"
   | exception Disk.Crash -> ());
  Disk.clear_fault disk;
  let r = Journal.recover (Buffer_pool.create ~capacity:32 disk) in
  Alcotest.(check (list string)) "incomplete record dropped" [ "first" ]
    r.Journal.records;
  Journal.append r.Journal.journal "second";
  let r2 = Journal.recover (Buffer_pool.create ~capacity:32 disk) in
  Alcotest.(check (list string))
    "append continues after recovery" [ "first"; "second" ] r2.Journal.records

let prop_journal_recover_roundtrip =
  QCheck.Test.make ~count:100 ~name:"journal: append*/recover round-trip"
    Gen_store.arb_payloads (fun payloads ->
      let disk = Disk.create () in
      let pool = Buffer_pool.create ~capacity:8 disk in
      let j = Journal.create pool in
      List.iter (Journal.append j) payloads;
      let r = Journal.recover (Buffer_pool.create ~capacity:8 disk) in
      r.Journal.records = payloads)

(* --- codec round-trip properties ---------------------------------------- *)

let prop_record_codec_roundtrip =
  QCheck.Test.make ~count:500 ~name:"journal record: encode/decode round-trip"
    Gen_store.arb_record (fun r ->
      match Journal_record.decode (Journal_record.encode r) with
      | Ok r' -> Journal_record.equal r r'
      | Error _ -> false)

let prop_vnode_codec_roundtrip =
  QCheck.Test.make ~count:200 ~name:"vnode codec: encode/decode round-trip"
    Gen_xml.arb_doc (fun doc ->
      let gen = Xid.Gen.create () in
      let v = Vnode.of_xml gen (Xml.normalize doc) in
      match Codec.decode (Codec.encode v) with
      | Ok v' -> Vnode.equal_with_xids v v'
      | Error _ -> false)

let prop_delta_codec_roundtrip =
  QCheck.Test.make ~count:200 ~name:"delta codec: encode/decode round-trip"
    Gen_xml.arb_doc_pair (fun (a, b) ->
      let gen = Xid.Gen.create () in
      let old_tree = Vnode.of_xml gen (Xml.normalize a) in
      let delta, _ = Diff.diff ~gen ~old_tree ~new_tree:(Xml.normalize b) in
      let s = Delta.encode delta in
      match Delta.decode s with
      | Ok d -> Delta.op_count d = Delta.op_count delta && Delta.encode d = s
      | Error _ -> false)

(* Backward reconstruction through the delta chain must agree with a forward
   replay from version 0, whatever anchor (current version or snapshot) the
   reconstruction picks. *)
let prop_backward_equals_forward snapshot_every name =
  QCheck.Test.make ~count:30 ~name (Gen_xml.arb_history ~max_versions:8)
    (fun (doc0, succs) ->
      let config =
        { Config.default with snapshot_every; cretime_index = false }
      in
      let db = Db.create ~config () in
      let id = Db.insert_document db ~url:"h" doc0 in
      List.iter (fun x -> ignore (Db.update_document db ~url:"h" x)) succs;
      let d = Db.doc db id in
      let map = Xidmap.of_vnode (Db.reconstruct db id 0) in
      let ok = ref true in
      for v = 1 to Docstore.version_count d - 1 do
        Delta.apply_forward map (Docstore.read_delta d v);
        if not (Vnode.equal_with_xids (Xidmap.to_vnode map) (Db.reconstruct db id v))
        then ok := false
      done;
      !ok)

(* --- the scripted workload ---------------------------------------------- *)

type op = Ins of string * Xml.t | Upd of string * Xml.t | Del of string

(* 24 operations over three URLs — 22 commits, two deletions, one URL
   reused after deletion.  Deterministically generated once and replayed
   identically by the reference run and every crash run. *)
let workload =
  lazy
    (let st = Random.State.make [| 0x7e57; 2002 |] in
     let cur = Hashtbl.create 4 in
     let ops = ref [] in
     let push o = ops := o :: !ops in
     let ins u =
       let d = Gen_xml.gen_doc st in
       Hashtbl.replace cur u d;
       push (Ins (u, d))
     in
     let upd u =
       let d = Gen_xml.mutate ~rounds:(1 + Random.State.int st 3) (Hashtbl.find cur u) st in
       Hashtbl.replace cur u d;
       push (Upd (u, d))
     in
     let del u =
       Hashtbl.remove cur u;
       push (Del u)
     in
     ins "a"; upd "a"; upd "a"; ins "b"; upd "b"; upd "a"; upd "b"; upd "a";
     ins "c"; upd "c"; upd "b"; upd "a"; del "b"; upd "c"; upd "a";
     ins "b"; upd "b"; upd "c"; upd "a"; upd "b"; upd "c"; upd "a"; del "c";
     upd "b";
     List.rev !ops)

let day = 86_400
let base_seconds = Timestamp.to_seconds (ts "01/06/2001")
let op_ts i = Timestamp.of_seconds (base_seconds + ((i + 1) * day))

let apply db i = function
  | Ins (u, x) -> ignore (Db.insert_document db ~url:u ~ts:(op_ts i) x)
  | Upd (u, x) -> ignore (Db.update_document db ~url:u ~ts:(op_ts i) x)
  | Del u -> Db.delete_document db ~url:u ~ts:(op_ts i) ()

(* --- state fingerprints -------------------------------------------------- *)

(* A fingerprint captures everything the equivalence assertions care about:
   every version of every document reconstructed to XML, deletion marks,
   DocHistory over the whole timeline, and TPatternScan results — the
   all-versions variant plus a snapshot probe at every operation timestamp.
   Scan output is sorted: index rebuild order may legitimately differ from
   the live maintenance order. *)

let patterns =
  lazy
    [
      Pattern.of_path_exn "//name";
      Pattern.of_path_exn "//item";
      Pattern.of_path_exn ~value:"pizza" "//name";
    ]

let fingerprint ~ts_probes db =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sorted l = List.sort String.compare l in
  List.iter
    (fun id ->
      let d = Db.doc db id in
      add "doc %d url=%s deleted=%s\n" id (Docstore.url d)
        (match Docstore.deleted_at d with
         | None -> "-"
         | Some t -> Timestamp.to_string t);
      add "  base %d\n" (Docstore.first_version d);
      for v = Docstore.first_version d to Docstore.version_count d - 1 do
        add "  v%d @%s dt=%s %s\n" v
          (Timestamp.to_string (Docstore.ts_of_version d v))
          (match Docstore.doc_time_of_version d v with
           | None -> "-"
           | Some t -> Timestamp.to_string t)
          (Print.to_string (Vnode.to_xml (Db.reconstruct db id v)))
      done;
      List.iter
        (fun dv ->
          add "  hist %s v%d %s\n"
            (Eid.Temporal.to_string dv.History.dv_teid)
            dv.History.dv_version
            (Interval.to_string dv.History.dv_interval))
        (History.doc_history db id ~t1:Timestamp.minus_infinity
           ~t2:Timestamp.plus_infinity))
    (Db.doc_ids db);
  List.iteri
    (fun pi p ->
      let teids bindings =
        String.concat " "
          (sorted (List.map Eid.Temporal.to_string (Scan.to_teids db bindings)))
      in
      add "pat%d all: %s\n" pi (teids (Scan.tpattern_scan_all db p));
      List.iter
        (fun t ->
          add "pat%d @%s: %s\n" pi (Timestamp.to_string t)
            (teids (Scan.tpattern_scan db p t)))
        ts_probes)
    (Lazy.force patterns);
  Buffer.contents buf

(* --- the exhaustive crash-point sweep ------------------------------------ *)

let crash_sweep ?segment_postings ~snapshot_every ~placement () =
  let config =
    { Config.default with
      snapshot_every; placement; fti_mode = Config.Fti_both;
      durability = `Journal;
      fti_segment_postings =
        (match segment_postings with
         | Some n -> n
         | None -> Config.default.Config.fti_segment_postings) }
  in
  let ops = Lazy.force workload in
  let n_ops = List.length ops in
  (* probe the snapshot operator at every commit instant *)
  let ts_probes = List.init n_ops op_ts in
  (* Reference run: fingerprint after every operation, count the writes. *)
  let ref_db = Db.create ~config () in
  let writes_before = (Io_stats.copy (Db.io_stats ref_db)).Io_stats.page_writes in
  let fps = Array.make (n_ops + 1) "" in
  fps.(0) <- fingerprint ~ts_probes ref_db;
  List.iteri
    (fun i op ->
      apply ref_db i op;
      fps.(i + 1) <- fingerprint ~ts_probes ref_db)
    ops;
  let op_writes =
    (Db.io_stats ref_db).Io_stats.page_writes - writes_before
  in
  Alcotest.(check bool)
    (Printf.sprintf "workload is big enough (%d writes, %d ops)" op_writes n_ops)
    true
    (op_writes > n_ops && n_ops >= 20);
  for i = 1 to op_writes do
    let db = Db.create ~config () in
    Disk.fail_after_writes (Db.disk db) i;
    let crashed_at = ref (-1) in
    let rec run k = function
      | [] -> ()
      | op :: rest -> (
        match apply db k op with
        | () -> run (k + 1) rest
        | exception Disk.Crash -> crashed_at := k)
    in
    run 0 ops;
    let k = !crashed_at in
    if k < 0 then
      Alcotest.failf "write %d of %d did not crash the workload" i op_writes;
    Disk.clear_fault (Db.disk db);
    let rdb = Db.recover (Db.disk db) config in
    (match Db.verify rdb with
     | Ok _ -> ()
     | Error errs ->
       Alcotest.failf "crash point %d (op %d): verify failed: %s" i k
         (String.concat "; " errs));
    let fp = fingerprint ~ts_probes rdb in
    if not (String.equal fp fps.(k) || String.equal fp fps.(k + 1)) then
      Alcotest.failf
        "crash point %d: recovered state is neither before nor after op %d"
        i k
  done

(* --- the vacuum crash sweep ---------------------------------------------- *)

(* Same exhaustive technique, aimed at the vacuum: run the full workload
   uncrashed, then arm the disk to tear the i-th write issued by the vacuum
   itself, for every i.  The recovered state must equal the pre-vacuum or
   the post-vacuum fingerprint — never a mixture — and the allocator's
   live-page count must equal the pages actually reachable from the
   surviving chains (no leaked, no double-freed pages). *)

let live_pages_reachable db =
  List.fold_left
    (fun acc id -> acc + Docstore.total_pages (Db.doc db id))
    0 (Db.doc_ids db)

let check_no_leaks what db =
  Alcotest.(check int)
    (what ^ ": allocator live pages = reachable pages")
    (live_pages_reachable db) (Db.live_pages db)

(* Horizon after op 13: document b's first life (deleted at op 12) ended
   before it, so b drops entirely; a and c lose their chain prefixes. *)
let vacuum_retention =
  lazy { Config.no_retention with Config.keep_newer_than = Some (op_ts 13) }

let vacuum_crash_sweep ~snapshot_every () =
  let config =
    { Config.default with
      snapshot_every; fti_mode = Config.Fti_both; durability = `Journal }
  in
  let retention = Lazy.force vacuum_retention in
  let ops = Lazy.force workload in
  let n_ops = List.length ops in
  let ts_probes = List.init n_ops op_ts in
  (* Reference run: fingerprints on either side of the vacuum, and the
     number of disk writes the vacuum issues. *)
  let ref_db = Db.create ~config () in
  List.iteri (apply ref_db) ops;
  let fp_before = fingerprint ~ts_probes ref_db in
  let writes_before = (Io_stats.copy (Db.io_stats ref_db)).Io_stats.page_writes in
  let report = Db.vacuum ~retention ref_db in
  let vacuum_writes =
    (Db.io_stats ref_db).Io_stats.page_writes - writes_before
  in
  let fp_after = fingerprint ~ts_probes ref_db in
  Alcotest.(check bool) "vacuum reclaims space" true
    (report.Db.vr_pages_freed > 0 && report.Db.vr_docs_dropped > 0
     && report.Db.vr_docs_squashed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "vacuum writes pages (%d)" vacuum_writes)
    true (vacuum_writes >= 1);
  check_no_leaks "reference after vacuum" ref_db;
  for i = 1 to vacuum_writes do
    let db = Db.create ~config () in
    List.iteri (apply db) ops;
    Disk.fail_after_writes (Db.disk db) i;
    (match Db.vacuum ~retention db with
     | (_ : Db.vacuum_report) ->
       Alcotest.failf "vacuum write %d of %d did not crash" i vacuum_writes
     | exception Disk.Crash -> ());
    Disk.clear_fault (Db.disk db);
    let rdb = Db.recover (Db.disk db) config in
    (match Db.verify rdb with
     | Ok _ -> ()
     | Error errs ->
       Alcotest.failf "vacuum crash point %d: verify failed: %s" i
         (String.concat "; " errs));
    let fp = fingerprint ~ts_probes rdb in
    if not (String.equal fp fp_before || String.equal fp fp_after) then
      Alcotest.failf
        "vacuum crash point %d: recovered state is neither pre- nor \
         post-vacuum" i;
    check_no_leaks (Printf.sprintf "crash point %d" i) rdb
  done;
  (* Recovering the uncrashed vacuumed disk reproduces the post state. *)
  let rdb = Db.recover (Db.disk ref_db) config in
  Alcotest.(check string) "clean restart lands post-vacuum" fp_after
    (fingerprint ~ts_probes rdb);
  check_no_leaks "clean restart after vacuum" rdb

(* --- clean restart ------------------------------------------------------- *)

(* Recovering an uncrashed disk reproduces the database exactly, and the
   recovered instance keeps working: further commits land identically. *)
let test_clean_restart () =
  let config =
    { Config.default with
      snapshot_every = Some 4; fti_mode = Config.Fti_both;
      durability = `Journal }
  in
  let ops = Lazy.force workload in
  let n_ops = List.length ops in
  let ts_probes = List.init n_ops op_ts in
  let db = Db.create ~config () in
  List.iteri (apply db) ops;
  let rdb = Db.recover (Db.disk db) config in
  Alcotest.(check string) "recovered state identical"
    (fingerprint ~ts_probes db) (fingerprint ~ts_probes rdb);
  (match Db.verify rdb with
   | Ok _ -> ()
   | Error errs -> Alcotest.failf "verify failed: %s" (String.concat "; " errs));
  (* continue committing on both instances *)
  let st = Random.State.make [| 99; 7 |] in
  let more =
    let d = Gen_xml.gen_doc st in
    [ Upd ("a", Gen_xml.mutate ~rounds:2 d st); Ins ("c", d);
      Upd ("b", Gen_xml.mutate ~rounds:1 d st); Del "a" ]
  in
  List.iteri (fun i op -> apply db (n_ops + i) op) more;
  List.iteri (fun i op -> apply rdb (n_ops + i) op) more;
  Alcotest.(check string) "post-recovery commits land identically"
    (fingerprint ~ts_probes db) (fingerprint ~ts_probes rdb)

(* Recovery replays commits through the normal FTI maintenance path, so a
   watermark-crossing replay rebuilds frozen segments cold — and answers
   queries identically to the live instance that froze incrementally. *)
let test_segment_cold_rebuild () =
  let config =
    { Config.default with
      fti_segment_postings = 8; durability = `Journal }
  in
  let ops = Lazy.force workload in
  let n_ops = List.length ops in
  let ts_probes = List.init n_ops op_ts in
  let db = Db.create ~config () in
  List.iteri (apply db) ops;
  let live_fti = Db.fti db in
  Alcotest.(check bool) "live instance froze" true
    (Txq_fti.Fti.freeze_count live_fti > 0);
  let rdb = Db.recover (Db.disk db) config in
  let fti = Db.fti rdb in
  Alcotest.(check bool) "segments rebuilt cold" true
    (Txq_fti.Fti.segment_count fti > 0);
  Alcotest.(check int) "posting count restored"
    (Txq_fti.Fti.posting_count live_fti) (Txq_fti.Fti.posting_count fti);
  Alcotest.(check string) "recovered state identical"
    (fingerprint ~ts_probes db) (fingerprint ~ts_probes rdb)

(* Recovery also restores the document-time index (Section 3.1). *)
let test_document_time_recovery () =
  let config =
    { Config.default with
      document_time_path = Some "//meta/published"; durability = `Journal }
  in
  let article published body =
    parse
      (Printf.sprintf
         "<article><meta><published>%s</published></meta><body>%s</body></article>"
         published body)
  in
  let db = Db.create ~config () in
  ignore
    (Db.insert_document db ~url:"n1" ~ts:(ts "05/06/2001")
       (article "01/06/2001" "first"));
  ignore
    (Db.insert_document db ~url:"n2" ~ts:(ts "06/06/2001")
       (article "20/05/2001" "second"));
  ignore
    (Db.update_document db ~url:"n1" ~ts:(ts "09/06/2001")
       (article "08/06/2001" "revised"));
  let show db =
    List.map
      (fun (dt, doc, v) ->
        Printf.sprintf "%s doc%d v%d" (Timestamp.to_string dt) doc v)
      (Db.find_by_document_time db ~t1:Timestamp.minus_infinity
         ~t2:Timestamp.plus_infinity)
  in
  let rdb = Db.recover (Db.disk db) config in
  Alcotest.(check (list string)) "document-time index rebuilt" (show db) (show rdb);
  Alcotest.(check (option string)) "per-version document time"
    (Some "08/06/2001")
    (Option.map Timestamp.to_string (Db.document_time rdb 0 1))

(* A journal tail that decodes as garbage (page digests intact, payload
   logically corrupt) must not abort recovery: replay stops at the longest
   decodable prefix — every record from the first bad one on is dropped,
   exactly as if the crash had happened one commit earlier — and the drop
   is visible in the metrics registry.  Regression: Db.recover used
   Journal_record.decode_exn and died on the first such record. *)
let test_corrupt_tail_recovery () =
  let config = { Config.default with durability = `Journal } in
  let db = Db.create ~config () in
  ignore (Db.insert_document db ~url:"u" ~ts:(ts "01/06/2001") (parse "<a>one</a>"));
  ignore (Db.update_document db ~url:"u" ~ts:(ts "02/06/2001") (parse "<a>two</a>"));
  let j =
    match Db.journal db with
    | Some j -> j
    | None -> Alcotest.fail "journaled config must carry a journal"
  in
  Journal.append j "garbage: not a journal record";
  Journal.append j "trailing garbage";
  Txq_obs.Metrics.reset ();
  let rdb = Db.recover (Db.disk db) config in
  Alcotest.(check int) "document survives" 1 (Db.document_count rdb);
  Alcotest.(check int) "both real commits replayed" 2
    (Db.stats rdb).Db.commits;
  let current db = Vnode.to_xml (Docstore.current (Option.get (Db.find_live db "u"))) in
  Alcotest.(check bool) "recovered content matches" true
    (Xml.equal (current db) (current rdb));
  Alcotest.(check (option int)) "dropped records counted" (Some 2)
    (Txq_obs.Metrics.counter_value "db.recover.records_dropped")

(* The converse shape: garbage followed by records that still decode is not
   a torn tail — it is mid-journal corruption, and silently dropping the
   decodable suffix would throw away committed history.  Recovery must
   refuse to open the store and count the refusal.  Regression: the
   torn-tail fix above initially truncated here too, resurrecting an old
   state as if the later commits had never happened. *)
let test_corrupt_mid_journal_refused () =
  let config = { Config.default with durability = `Journal } in
  let db = Db.create ~config () in
  ignore (Db.insert_document db ~url:"u" ~ts:(ts "01/06/2001") (parse "<a>one</a>"));
  ignore (Db.update_document db ~url:"u" ~ts:(ts "02/06/2001") (parse "<a>two</a>"));
  let j = Option.get (Db.journal db) in
  Journal.append j "garbage: not a journal record";
  (* a decodable record after the garbage: this is not a tail *)
  Journal.append j
    (Journal_record.encode
       (Journal_record.Delete
          { r_doc = 0; r_ts = Timestamp.to_seconds (ts "03/06/2001") }));
  Txq_obs.Metrics.reset ();
  (match Db.recover (Db.disk db) config with
   | (_ : Db.t) -> Alcotest.fail "expected recovery to refuse the store"
   | exception Failure _ -> ());
  Alcotest.(check (option int)) "refusal counted" (Some 1)
    (Txq_obs.Metrics.counter_value "db.recover.corrupt_mid_journal");
  Alcotest.(check (option int)) "nothing quietly dropped" None
    (Txq_obs.Metrics.counter_value "db.recover.records_dropped")

(* A non-durable database leaves no journal: recovery finds an empty store. *)
let test_recover_without_journal () =
  let db = Db.create () in
  ignore (Db.insert_document db ~url:"u" ~ts:(ts "01/06/2001") (parse "<a>x</a>"));
  let rdb = Db.recover (Db.disk db) Config.default in
  Alcotest.(check int) "nothing recoverable" 0 (Db.document_count rdb)

let () =
  Alcotest.run "recovery"
    [
      ( "journal",
        [
          Alcotest.test_case "append/recover round-trip" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "empty disk" `Quick test_journal_empty_disk;
          Alcotest.test_case "torn append dropped" `Quick
            test_journal_torn_append;
          QCheck_alcotest.to_alcotest prop_journal_recover_roundtrip;
        ] );
      ( "codecs",
        [
          QCheck_alcotest.to_alcotest prop_record_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_vnode_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_delta_codec_roundtrip;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest
            (prop_backward_equals_forward None
               "reconstruct: backward = forward replay (no snapshots)");
          QCheck_alcotest.to_alcotest
            (prop_backward_equals_forward (Some 3)
               "reconstruct: backward = forward replay (snapshot_every=3)");
        ] );
      ( "crash points",
        [
          Alcotest.test_case "no snapshots, unclustered" `Slow
            (crash_sweep ~snapshot_every:None ~placement:`Unclustered);
          Alcotest.test_case "no snapshots, clustered" `Slow
            (crash_sweep ~snapshot_every:None ~placement:(`Clustered 8));
          Alcotest.test_case "snapshots every 4, unclustered" `Slow
            (crash_sweep ~snapshot_every:(Some 4) ~placement:`Unclustered);
          Alcotest.test_case "snapshots every 4, clustered" `Slow
            (crash_sweep ~snapshot_every:(Some 4) ~placement:(`Clustered 8));
          (* watermark of 8 postings: freezes fire constantly, so crash
             points land with freezes in flight and recovery must rebuild
             the segments cold *)
          Alcotest.test_case "tiny fti segments (freeze-in-flight)" `Slow
            (crash_sweep ~segment_postings:8 ~snapshot_every:None
               ~placement:`Unclustered);
        ] );
      ( "vacuum crash points",
        [
          Alcotest.test_case "no snapshots" `Slow
            (vacuum_crash_sweep ~snapshot_every:None);
          Alcotest.test_case "snapshots every 4" `Slow
            (vacuum_crash_sweep ~snapshot_every:(Some 4));
        ] );
      ( "restart",
        [
          Alcotest.test_case "clean restart is exact" `Quick test_clean_restart;
          Alcotest.test_case "fti segments rebuilt cold" `Quick
            test_segment_cold_rebuild;
          Alcotest.test_case "document-time index" `Quick
            test_document_time_recovery;
          Alcotest.test_case "corrupt journal tail truncates replay" `Quick
            test_corrupt_tail_recovery;
          Alcotest.test_case "mid-journal corruption refuses to open" `Quick
            test_corrupt_mid_journal_refused;
          Alcotest.test_case "no journal, no state" `Quick
            test_recover_without_journal;
        ] );
    ]
