module Xml = Txq_xml.Xml
module Print = Txq_xml.Print
module Timestamp = Txq_temporal.Timestamp
open Txq_query

let ts = Timestamp.of_string
let now = ts "31/01/2001"
let rw q = Ast.to_string (Rewrite.query ~now (Parser.parse_exn q))

(* explicit rewrite-then-run, bypassing Exec's own planner-driven rewrite *)
let run_rewritten db q =
  match Parser.parse_statement q with
  | Error e -> Error (Exec.Parse_error e)
  | Ok stmt -> (
    match Rewrite.statement ~now:(Txq_db.Db.now db) stmt with
    | Ast.S_query q -> Exec.run db q
    | Ast.S_algebra a -> Exec.run_algebra db a)

(* --- individual rules ----------------------------------------------------- *)

let test_time_folding () =
  Alcotest.(check string) "literal chain folds"
    "SELECT R FROM doc(\"u\")[14/01/2001]/r R"
    (rw {|SELECT R FROM doc("u")[01/01/2001 + 2 WEEKS - 1 DAY]/r R|});
  (* NOW stays symbolic *)
  Alcotest.(check string) "NOW-relative times are not folded away"
    "SELECT R FROM doc(\"u\")[NOW - 2 WEEKS]/r R"
    (rw {|SELECT R FROM doc("u")[NOW - 14 DAYS]/r R|})

let test_snapshot_to_current () =
  Alcotest.(check string) "[NOW] becomes a current scan"
    "SELECT R FROM doc(\"u\")/r R" (rw {|SELECT R FROM doc("u")[NOW]/r R|});
  Alcotest.(check string) "future snapshot becomes a current scan"
    "SELECT R FROM doc(\"u\")/r R"
    (rw {|SELECT R FROM doc("u")[NOW + 3 DAYS]/r R|});
  Alcotest.(check string) "past snapshot untouched"
    "SELECT R FROM doc(\"u\")[26/01/2001]/r R"
    (rw {|SELECT R FROM doc("u")[26/01/2001]/r R|});
  (* NOW - d could be in the past: must stay a snapshot *)
  Alcotest.(check string) "NOW minus duration stays temporal"
    "SELECT R FROM doc(\"u\")[NOW - 1 DAYS]/r R"
    (rw {|SELECT R FROM doc("u")[NOW - 1 DAY]/r R|})

let test_condition_pruning () =
  Alcotest.(check string) "true conjunct removed"
    "SELECT R FROM doc(\"u\")/r R WHERE R/p < 10"
    (rw {|SELECT R FROM doc("u")/r R WHERE 01/01/2001 < 02/01/2001 AND R/p < 10|});
  Alcotest.(check string) "NOT folds"
    "SELECT R FROM doc(\"u\")/r R WHERE R/p < 10"
    (rw
       {|SELECT R FROM doc("u")/r R WHERE NOT (02/01/2001 < 01/01/2001) AND R/p < 10|});
  Alcotest.(check string) "true disjunct decides the whole OR"
    "SELECT R FROM doc(\"u\")/r R"
    (rw {|SELECT R FROM doc("u")/r R WHERE R/p < 10 OR 01/01/2001 < 02/01/2001|})

let test_false_where_empties () =
  (* a provably-false WHERE must produce zero rows, not an error *)
  let db = Txq_db.Db.create () in
  ignore
    (Txq_db.Db.insert_document db ~url:"u" ~ts:(ts "01/01/2001")
       (Txq_xml.Parse.parse_exn "<r><p>5</p></r>"));
  match
    run_rewritten db
      {|SELECT R FROM doc("u")/r R WHERE 02/01/2001 < 01/01/2001|}
  with
  | Ok xml -> Alcotest.(check string) "empty results" "<results/>" (Print.to_string xml)
  | Error e -> Alcotest.fail (Exec.error_to_string e)

let test_distinct_under_aggregate () =
  Alcotest.(check string) "DISTINCT dropped"
    "SELECT COUNT(R) FROM doc(\"u\")/r R"
    (rw {|SELECT DISTINCT COUNT(R) FROM doc("u")/r R|});
  Alcotest.(check string) "DISTINCT kept on rows"
    "SELECT DISTINCT R FROM doc(\"u\")/r R"
    (rw {|SELECT DISTINCT R FROM doc("u")/r R|})

(* --- equivalence property ---------------------------------------------------- *)

let prop_rewrite_preserves_results =
  QCheck.Test.make ~count:25 ~name:"rewrite preserves query results"
    (Txq_test_support.Gen_xml.arb_history ~max_versions:4)
    (fun (doc0, versions) ->
      let db = Txq_db.Db.create () in
      let base = Timestamp.of_date ~day:1 ~month:1 ~year:2001 in
      ignore (Txq_db.Db.insert_document db ~url:"u" ~ts:base doc0);
      List.iteri
        (fun i v ->
          ignore
            (Txq_db.Db.update_document db ~url:"u"
               ~ts:(Timestamp.add base (Txq_temporal.Duration.days (i + 1)))
               v))
        versions;
      List.for_all
        (fun q ->
          let plain = Exec.run_string db q in
          let rewritten = run_rewritten db q in
          match (plain, rewritten) with
          | Ok a, Ok b -> String.equal (Print.to_string a) (Print.to_string b)
          | Error _, Error _ -> true
          | _ -> false)
        [
          {|SELECT COUNT(R) FROM doc("u")[NOW]/doc R|};
          {|SELECT R FROM doc("u")[02/01/2001 + 1 DAY]//name R|};
          {|SELECT R FROM doc("u")//price R WHERE 01/01/2001 < 02/01/2001 AND R/name CONTAINS "x"|};
          {|SELECT COUNT(R) FROM doc("u")[NOW - 1 DAY]//item R|};
        ])

let () =
  Alcotest.run "rewrite"
    [
      ( "rules",
        [
          Alcotest.test_case "time folding" `Quick test_time_folding;
          Alcotest.test_case "snapshot to current" `Quick test_snapshot_to_current;
          Alcotest.test_case "condition pruning" `Quick test_condition_pruning;
          Alcotest.test_case "false WHERE" `Quick test_false_where_empties;
          Alcotest.test_case "distinct under aggregate" `Quick
            test_distinct_under_aggregate;
        ] );
      ("equivalence", [QCheck_alcotest.to_alcotest prop_rewrite_preserves_results]);
    ]
