(* txmldbd end to end: the wire protocol in isolation, the server over
   real sockets, and the multi-client differential soak.

   The soak is the centrepiece: N clients issue deterministic mixed
   read/write streams concurrently; every write reply carries its exact
   commit timestamp and every read reply the snapshot watermark it ran
   at, so afterwards the whole interleaving can be replayed serially
   against a fresh oracle database and each concurrent read compared
   byte for byte with the oracle at its watermark.  The remaining cases
   are the ways clients misbehave: malformed frames, mutated statements,
   a connection killed mid-stream, and shutdown under load — none may
   kill the daemon or leak a snapshot pin. *)

module Xml = Txq_xml.Xml
module Parse = Txq_xml.Parse
module Print = Txq_xml.Print
module Timestamp = Txq_temporal.Timestamp
module Db = Txq_db.Db
module Exec = Txq_query.Exec
module Load = Txq_workload.Load
module Mixed = Txq_workload.Mixed
module P = Txq_server.Protocol
module Server = Txq_server.Server
module Client = Txq_server.Client
module Loadgen = Txq_server.Loadgen

let small_spec = { Load.default_spec with Load.documents = 4; versions = 4 }

let with_server ?(config = Server.default_config) db f =
  let server = Server.start ~config db in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop server))
    (fun () -> f server (Server.port server))

let request_of_op = function
  | Mixed.Query stmt -> P.Query stmt
  | Mixed.Insert (url, xml) -> P.Insert (url, Print.to_string xml)
  | Mixed.Update (url, xml) -> P.Update (url, Print.to_string xml)
  | Mixed.Delete url -> P.Delete url

(* --- protocol framing ------------------------------------------------------ *)

let roundtrip_request req =
  let opcode, body = P.encode_request req in
  match P.decode_request opcode body with
  | Ok req' -> Alcotest.(check bool) "request survives" true (req = req')
  | Error e -> Alcotest.failf "decode failed: %s" e

let roundtrip_response resp =
  let opcode, body = P.encode_response resp in
  match P.decode_response opcode body with
  | Ok resp' -> Alcotest.(check bool) "response survives" true (resp = resp')
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_codec_roundtrips () =
  List.iter roundtrip_request
    [
      P.Ping;
      P.Query "SELECT R FROM doc(\"a\")//r R";
      P.Explain "";
      P.Analyze "COUNT(collection(\"*\"))";
      P.Insert ("guide.com/x.xml", "<a>body</a>");
      P.Update ("", "<a/>");
      P.Delete "guide.com/x.xml";
      P.Metrics;
      P.Stats;
    ];
  List.iter roundtrip_response
    [
      P.Done { rows = 0; watermark = 0; ts = 0 };
      P.Done { rows = max_int; watermark = 123456; ts = -1 };
      P.Chunk "";
      P.Chunk (String.make 9000 'x');
      P.Error (P.error_code_to_int P.E_parse, "expected an expression");
      P.Pong;
    ]

let test_frame_io () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close a; Unix.close b)
  @@ fun () ->
  P.write_request a (P.Query "SELECT");
  (match P.read_frame ~max_frame:P.default_max_frame b with
   | `Frame (opcode, body) ->
     Alcotest.(check bool) "decodes to the request" true
       (P.decode_request opcode body = Ok (P.Query "SELECT"))
   | _ -> Alcotest.fail "expected a frame");
  (* an announced length over the limit is surfaced, not allocated *)
  let huge = Bytes.create 4 in
  Bytes.set_uint16_be huge 0 0xFFFF;
  Bytes.set_uint16_be huge 2 0xFFFF;
  ignore (Unix.write a huge 0 4);
  (match P.read_frame ~max_frame:4096 b with
   | `Too_large n ->
     (* 0xFFFFFFFF wraps negative through Int32: out of range either way *)
     Alcotest.(check bool) "reports an out-of-range length" true
       (n > 4096 || n < 1)
   | _ -> Alcotest.fail "expected `Too_large");
  Unix.shutdown a Unix.SHUTDOWN_SEND;
  match P.read_frame ~max_frame:4096 b with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected `Eof after close"

let test_http_preamble () =
  Alcotest.(check bool) "GET" true (P.http_preamble "GET ");
  Alcotest.(check bool) "binary" false (P.http_preamble "\x00\x00\x00\x05");
  Alcotest.(check bool) "short" false (P.http_preamble "GE")

(* --- server basics over the wire ------------------------------------------- *)

let test_query_over_wire () =
  let db = Load.load_db small_spec in
  with_server db @@ fun _server port ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Alcotest.(check bool) "ping" true (Client.ping c);
  let stmt = "SELECT R/name FROM doc(\"" ^ Load.url_of 0 ^ "\")//restaurant R" in
  (match Client.query c stmt with
   | Ok reply ->
     let want =
       match Exec.run_string db stmt with
       | Ok xml -> Print.to_string xml
       | Error e -> Alcotest.failf "oracle failed: %s" (Exec.error_to_string e)
     in
     Alcotest.(check string) "body matches direct execution" want
       reply.Client.body
   | Error (code, msg) -> Alcotest.failf "query failed (%d): %s" code msg);
  (* a parse error comes back as a typed error frame, not a dead socket *)
  (match Client.query c "SELECT" with
   | Error (code, _) ->
     Alcotest.(check int) "parse error code"
       (P.error_code_to_int P.E_parse) code
   | Ok _ -> Alcotest.fail "expected a parse error");
  (* and the connection is still usable afterwards *)
  Alcotest.(check bool) "ping after error" true (Client.ping c);
  let contains s re =
    let n = String.length s and m = String.length re in
    let rec scan i = i + m <= n && (String.sub s i m = re || scan (i + 1)) in
    scan 0
  in
  match Client.metrics c with
  | Ok reply ->
    Alcotest.(check bool) "metrics count connections" true
      (contains reply.Client.body "server.connections_total");
    (* this very connection is live: its counters must appear *)
    Alcotest.(check bool) "metrics list live connections" true
      (contains reply.Client.body "conn.")
  | Error (code, msg) -> Alcotest.failf "metrics failed (%d): %s" code msg

let test_streaming_matches_eager () =
  (* tiny chunks force many Chunk frames; reassembly must be byte-identical *)
  let db = Load.load_db small_spec in
  let config = { Server.default_config with Server.chunk_bytes = 64 } in
  with_server ~config db @@ fun _server port ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let stmts =
    [
      "SELECT R FROM collection(\"*\")//restaurant R";
      "SELECT TIME(R), R/price FROM collection(\"*\")[EVERY]//restaurant R";
      "SELECT COUNT(R) FROM collection(\"*\")//restaurant R";
      "SELECT R FROM doc(\"no.such.doc\")//restaurant R";
    ]
  in
  List.iter
    (fun stmt ->
      let buf = Buffer.create 256 in
      let chunks = ref 0 in
      let on_chunk s = incr chunks; Buffer.add_string buf s in
      match Client.request ~on_chunk c (P.Query stmt) with
      | Error (code, msg) -> Alcotest.failf "%s failed (%d): %s" stmt code msg
      | Ok _ ->
        let want =
          match Exec.run_string db stmt with
          | Ok xml -> Print.to_string xml
          | Error e ->
            Alcotest.failf "oracle failed: %s" (Exec.error_to_string e)
        in
        Alcotest.(check string) stmt want (Buffer.contents buf);
        if String.length want > 3 * 64 then
          Alcotest.(check bool)
            (stmt ^ ": large result arrived in multiple chunks") true
            (!chunks > 1))
    stmts

let test_http_endpoints () =
  let db = Load.load_db small_spec in
  with_server db @@ fun _server port ->
  let http path =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
    let req = "GET " ^ path ^ " HTTP/1.1\r\nHost: localhost\r\n\r\n" in
    ignore (Unix.write_substring fd req 0 (String.length req));
    let buf = Buffer.create 512 in
    let chunk = Bytes.create 4096 in
    let rec drain () =
      match Unix.read fd chunk 0 4096 with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
    in
    drain ();
    Buffer.contents buf
  in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  Alcotest.(check bool) "metrics 200" true
    (starts_with "HTTP/1.1 200" (http "/metrics"));
  Alcotest.(check bool) "stats 200" true
    (starts_with "HTTP/1.1 200" (http "/stats"));
  Alcotest.(check bool) "unknown path 404" true
    (starts_with "HTTP/1.1 404" (http "/nope"))

(* --- hostile input --------------------------------------------------------- *)

let test_garbage_frames () =
  let db = Load.load_db small_spec in
  with_server db @@ fun _server port ->
  (* unknown opcode: typed error, connection survives *)
  let c = Client.connect ~port () in
  P.write_frame (Client.fd c) 0x7F "junk";
  (match P.read_frame ~max_frame:P.default_max_frame (Client.fd c) with
   | `Frame (opcode, body) -> (
     match P.decode_response opcode body with
     | Ok (P.Error (code, _)) ->
       Alcotest.(check int) "bad frame code"
         (P.error_code_to_int P.E_bad_frame) code
     | other ->
       Alcotest.failf "expected an error frame, got %s"
         (match other with Ok _ -> "another response" | Error e -> e))
   | _ -> Alcotest.fail "expected a frame");
  Alcotest.(check bool) "connection survives junk opcode" true (Client.ping c);
  (* truncated body for a structured request: typed error, survives *)
  P.write_frame (Client.fd c) 0x10 "\xFF\xFF";
  (match Client.request c P.Ping with
   | Error (code, _) ->
     Alcotest.(check int) "malformed body code"
       (P.error_code_to_int P.E_bad_frame) code
   | Ok _ -> Alcotest.fail "expected an error for the malformed insert");
  Alcotest.(check bool) "still alive" true (Client.ping c);
  Client.close c;
  (* hostile length prefix: error frame, then the connection is dropped *)
  let c = Client.connect ~port () in
  let huge = Bytes.make 4 '\xEE' in
  ignore (Unix.write (Client.fd c) huge 0 4);
  (match P.read_frame ~max_frame:P.default_max_frame (Client.fd c) with
   | `Frame (opcode, body) -> (
     match P.decode_response opcode body with
     | Ok (P.Error (code, _)) ->
       Alcotest.(check int) "too large code"
         (P.error_code_to_int P.E_too_large) code
     | _ -> Alcotest.fail "expected an error frame")
   | `Eof -> () (* also acceptable: dropped without a reply *)
   | _ -> Alcotest.fail "expected an error frame or eof");
  (match P.read_frame ~max_frame:P.default_max_frame (Client.fd c) with
   | `Eof -> ()
   | _ -> Alcotest.fail "desynced connection must be dropped");
  Client.close c;
  (* raw byte noise on fresh connections must never take the server down *)
  let rng = Random.State.make [| 0xBAD5EED |] in
  for _ = 1 to 40 do
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
    let n = Random.State.int rng 64 in
    let noise =
      Bytes.init n (fun _ -> Char.chr (Random.State.int rng 256))
    in
    (try ignore (Unix.write fd noise 0 n)
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  done;
  let c = Client.connect ~port () in
  Alcotest.(check bool) "server survives byte noise" true (Client.ping c);
  Client.close c

(* Statement mutation corpus: valid statements, then random byte surgery. *)
let statement_corpus =
  let g = Mixed.create ~spec:small_spec ~client:0 ~seed:11 () in
  let rec queries n acc =
    if n = 0 then acc
    else
      match Mixed.next_op g with
      | Mixed.Query s -> queries (n - 1) (s :: acc)
      | _ -> queries n acc
  in
  queries 12
    [
      "SELECT R FROM doc(\"guide.com/doc-0.xml\")[26/01/2001]//restaurant R";
      "SELECT TIME(R), R FROM collection(\"*\")[EVERY]//restaurant R \
       WHERE R/price < 20";
      "COUNT(collection(\"*\")//restaurant) BY DOC";
      "(doc(\"a\")//r = \"x\") UNION (doc(\"b\")//r = \"y\")";
    ]

let mutate rng s =
  let n = String.length s in
  match Random.State.int rng 5 with
  | 0 when n > 0 ->
    (* flip one byte *)
    let i = Random.State.int rng n in
    String.mapi
      (fun j c -> if j = i then Char.chr (Random.State.int rng 256) else c)
      s
  | 1 when n > 1 ->
    (* drop a slice *)
    let i = Random.State.int rng n in
    let len = 1 + Random.State.int rng (n - i) in
    String.sub s 0 i ^ String.sub s (i + len) (n - i - len)
  | 2 ->
    (* insert noise *)
    let i = if n = 0 then 0 else Random.State.int rng n in
    let noise =
      String.init
        (1 + Random.State.int rng 6)
        (fun _ -> Char.chr (Random.State.int rng 256))
    in
    String.sub s 0 i ^ noise ^ String.sub s i (n - i)
  | 3 when n > 0 ->
    (* truncate *)
    String.sub s 0 (Random.State.int rng n)
  | _ ->
    (* splice two corpus statements *)
    let other = List.nth statement_corpus
        (Random.State.int rng (List.length statement_corpus)) in
    let i = if n = 0 then 0 else Random.State.int rng n in
    let j = Random.State.int rng (String.length other + 1) in
    String.sub s 0 i ^ String.sub other j (String.length other - j)

let mutated rng =
  let s =
    List.nth statement_corpus
      (Random.State.int rng (List.length statement_corpus))
  in
  let rec go s = function 0 -> s | k -> go (mutate rng s) (k - 1) in
  go s (1 + Random.State.int rng 3)

(* Mutated statements through the in-process entry points: the evaluator
   must answer [Ok]/[Error] on every input, never raise. *)
let prop_exec_never_raises =
  let db = Load.load_db { small_spec with Load.documents = 2; versions = 2 } in
  QCheck.Test.make ~count:300 ~name:"exec total on mutated statements"
    QCheck.(pair small_nat (small_list small_nat))
    (fun (seed, salts) ->
      let rng = Random.State.make (Array.of_list (seed :: salts)) in
      let s = mutated rng in
      (match Exec.run_string db s with Ok _ | Error _ -> ());
      (match Exec.explain_string db s with Ok _ | Error _ -> ());
      (match Exec.explain_analyze_string db s with Ok _ | Error _ -> ());
      true)

let test_deep_nesting_rejected () =
  let db = Db.create () in
  let deep = String.make 2000 '(' ^ "1" ^ String.make 2000 ')' in
  (match Exec.run_string db ("SELECT R FROM doc(\"a\")//r R WHERE " ^ deep ^ " = 1")
   with
   | Ok _ -> Alcotest.fail "expected a parse error"
   | Error e ->
     let msg = Exec.error_to_string e in
     Alcotest.(check bool) ("rejected: " ^ msg) true (String.length msg > 0))

(* Mutated statements over the wire: every request gets a terminal frame
   and the connection stays in sync. *)
let test_statement_fuzz_over_wire () =
  let db = Load.load_db { small_spec with Load.documents = 2; versions = 2 } in
  with_server db @@ fun _server port ->
  let rng = Random.State.make [| 0xF422 |] in
  let c = ref (Client.connect ~port ()) in
  for i = 1 to 200 do
    let s = mutated rng in
    match Client.request !c (P.Query s) with
    | Ok _ | Error _ -> ()
    | exception Client.Disconnected ->
      Alcotest.failf "server dropped the connection on %S (iteration %d)" s i
  done;
  Client.close !c;
  c := Client.connect ~port ();
  Alcotest.(check bool) "server healthy after fuzz" true (Client.ping !c);
  Client.close !c

(* --- multi-client differential soak ---------------------------------------- *)

type logged = {
  l_op : Mixed.op;
  l_body : string;  (** full streamed reply (reads) *)
  l_watermark : int;  (** snapshot watermark (reads) / post-commit (writes) *)
  l_ts : int;  (** commit timestamp in epoch seconds (writes) *)
}

let test_differential_soak () =
  let clients = 8 and ops_per_client = 25 and seed = 7 in
  let db = Load.load_db small_spec in
  let seed_commits = (Db.stats db).Db.commits in
  let config = { Server.default_config with Server.readers = clients } in
  let logs = Array.make clients [] in
  let failures = ref [] in
  let fail_mu = Mutex.create () in
  let record_failure msg =
    Mutex.lock fail_mu;
    failures := msg :: !failures;
    Mutex.unlock fail_mu
  in
  with_server ~config db (fun _server port ->
      let run i =
        let g = Mixed.create ~spec:small_spec ~client:i ~seed () in
        let c = Client.connect ~port () in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        for _ = 1 to ops_per_client do
          let op = Mixed.next_op g in
          match Client.request c (request_of_op op) with
          | Ok r ->
            logs.(i) <-
              { l_op = op; l_body = r.Client.body;
                l_watermark = r.Client.watermark; l_ts = r.Client.ts }
              :: logs.(i)
          | Error (code, msg) ->
            record_failure
              (Printf.sprintf "client %d: %s -> error %d: %s" i
                 (Mixed.op_to_string op) code msg)
          | exception Client.Disconnected ->
            record_failure
              (Printf.sprintf "client %d: disconnected on %s" i
                 (Mixed.op_to_string op))
        done
      in
      let threads =
        List.init clients (fun i -> Thread.create (fun () -> run i) ())
      in
      List.iter Thread.join threads);
  (match !failures with
   | [] -> ()
   | msgs -> Alcotest.failf "soak failures:\n%s" (String.concat "\n" msgs));
  let all = List.concat_map (fun l -> l) (Array.to_list logs) in
  (* Commit timestamps come from the logical clock ticking under the write
     lock: unique and totally ordered, so sorting the writes by timestamp
     recovers the exact global commit order across all eight clients. *)
  let writes =
    List.filter (fun l -> Mixed.is_write l.l_op) all
    |> List.sort (fun a b -> compare a.l_ts b.l_ts)
  in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a.l_ts < b.l_ts && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "commit timestamps are unique and ordered" true
    (strictly_increasing writes);
  Alcotest.(check int) "every write committed"
    ((Db.stats db).Db.commits - seed_commits)
    (List.length writes);
  (* Serial replay: a fresh oracle applies the same writes at the same
     instants in commit order; a read that ran at snapshot watermark w saw
     exactly the first (w - seed) commits, so pausing the replay there and
     running the statement directly must reproduce the streamed body byte
     for byte. *)
  let oracle = Load.load_db small_spec in
  Alcotest.(check int) "oracle seeds identically" seed_commits
    (Db.stats oracle).Db.commits;
  let apply l =
    let ts = Timestamp.of_seconds l.l_ts in
    match l.l_op with
    | Mixed.Insert (url, xml) -> ignore (Db.insert_document oracle ~url ~ts xml)
    | Mixed.Update (url, xml) -> ignore (Db.update_document oracle ~url ~ts xml)
    | Mixed.Delete url -> Db.delete_document oracle ~url ~ts ()
    | Mixed.Query _ -> assert false
  in
  let reads =
    List.filter (fun l -> not (Mixed.is_write l.l_op)) all
    |> List.sort (fun a b -> compare a.l_watermark b.l_watermark)
  in
  Alcotest.(check bool) "soak exercised reads" true (reads <> []);
  Alcotest.(check bool) "soak exercised writes" true (writes <> []);
  let pending = ref writes in
  let applied = ref 0 in
  List.iter
    (fun l ->
      let stmt =
        match l.l_op with Mixed.Query s -> s | _ -> assert false
      in
      while !pending <> [] && seed_commits + !applied < l.l_watermark do
        apply (List.hd !pending);
        pending := List.tl !pending;
        incr applied
      done;
      Alcotest.(check int)
        (Printf.sprintf "oracle reached watermark %d" l.l_watermark)
        l.l_watermark
        (seed_commits + !applied);
      match Exec.run_string oracle stmt with
      | Error e ->
        Alcotest.failf "oracle rejects %S: %s" stmt (Exec.error_to_string e)
      | Ok xml ->
        let want = Print.to_string xml in
        if want <> l.l_body then
          Alcotest.failf
            "divergence at watermark %d on %S:\nserver: %s\noracle: %s"
            l.l_watermark stmt l.l_body want)
    reads

(* --- connection death and shutdown ----------------------------------------- *)

let test_kill_client_mid_stream () =
  let db = Load.load_db { small_spec with Load.documents = 6; versions = 6 } in
  let config =
    { Server.default_config with Server.readers = 2; chunk_bytes = 64 }
  in
  let leaked =
    let server = Server.start ~config db in
    let port = Server.port server in
    let c = Client.connect ~port () in
    P.write_request (Client.fd c)
      (P.Query "SELECT TIME(R), R FROM collection(\"*\")[EVERY]//restaurant R");
    (* take one chunk, then tear the connection down mid-reply *)
    (match P.read_frame ~max_frame:P.default_max_frame (Client.fd c) with
     | `Frame _ -> ()
     | _ -> Alcotest.fail "expected the first reply frame");
    (try Unix.shutdown (Client.fd c) Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    Client.close c;
    (* the server must shrug it off: still serving, nothing pinned *)
    let c2 = Client.connect ~port () in
    Alcotest.(check bool) "server alive after client death" true
      (Client.ping c2);
    (match Client.query c2 "SELECT R FROM collection(\"*\")//restaurant R" with
     | Ok _ -> ()
     | Error (code, msg) -> Alcotest.failf "query failed (%d): %s" code msg);
    Client.close c2;
    Server.stop server
  in
  Alcotest.(check int) "no leaked pins" 0 leaked;
  Alcotest.(check int) "db agrees" 0 (Db.pinned_snapshots db)

let test_shutdown_under_load () =
  let db = Load.load_db small_spec in
  let config = { Server.default_config with Server.readers = 4 } in
  let server = Server.start ~config db in
  let port = Server.port server in
  let stopped = ref false in
  let run () =
    let c = Client.connect ~port () in
    (try
       while not !stopped do
         match
           Client.query c "SELECT R FROM collection(\"*\")//restaurant R"
         with
         | Ok _ -> ()
         | Error _ -> raise Exit
       done
     with Exit | Client.Disconnected -> ());
    Client.close c
  in
  let threads = List.init 4 (fun _ -> Thread.create run ()) in
  Thread.delay 0.2;
  let leaked = Server.stop server in
  stopped := true;
  List.iter Thread.join threads;
  Alcotest.(check int) "no leaked pins under load" 0 leaked;
  Alcotest.(check int) "db agrees" 0 (Db.pinned_snapshots db)

let test_loadgen_closed_loop () =
  let db = Load.load_db small_spec in
  let config = { Server.default_config with Server.readers = 4 } in
  with_server ~config db @@ fun _server port ->
  let report =
    Loadgen.closed_loop ~port ~clients:4 ~ops_per_client:10
      ~spec:small_spec ~reconnect_every:4 ~seed:3 ()
  in
  Alcotest.(check int) "all ops answered" 40 report.Loadgen.r_ops;
  Alcotest.(check int) "no errors" 0 report.Loadgen.r_errors;
  Alcotest.(check int) "no disconnects" 0 report.Loadgen.r_disconnects;
  Alcotest.(check bool) "throughput measured" true (report.Loadgen.r_qps > 0.0)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "codec roundtrips" `Quick test_codec_roundtrips;
          Alcotest.test_case "frame io" `Quick test_frame_io;
          Alcotest.test_case "http preamble" `Quick test_http_preamble;
        ] );
      ( "serving",
        [
          Alcotest.test_case "query over the wire" `Quick test_query_over_wire;
          Alcotest.test_case "streaming matches eager" `Quick
            test_streaming_matches_eager;
          Alcotest.test_case "http endpoints" `Quick test_http_endpoints;
        ] );
      ( "hostile input",
        [
          Alcotest.test_case "garbage frames" `Quick test_garbage_frames;
          QCheck_alcotest.to_alcotest prop_exec_never_raises;
          Alcotest.test_case "deep nesting rejected" `Quick
            test_deep_nesting_rejected;
          Alcotest.test_case "statement fuzz over the wire" `Quick
            test_statement_fuzz_over_wire;
        ] );
      ( "soak",
        [
          Alcotest.test_case "8-client differential soak" `Quick
            test_differential_soak;
          Alcotest.test_case "loadgen closed loop" `Quick
            test_loadgen_closed_loop;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "kill a client mid-stream" `Quick
            test_kill_client_mid_stream;
          Alcotest.test_case "shutdown under load" `Quick
            test_shutdown_under_load;
        ] );
    ]
