(* Journal shipping: replicas, resume-after-kill, and point-in-time restore.

   The centrepieces are two exhaustive sweeps.  The kill sweep runs a
   scripted workload on a primary, ships it to a replica killed after
   every record boundary k, recovers the replica's disk alone, and
   demands the recovered state equal the serial-replay prefix of exactly
   k records — then resumes the stream and demands convergence.  The
   restore sweep replays `restore_as_of` at every commit instant of the
   workload and demands byte-identical fingerprints against an oracle
   database built from just the first commits. *)

module Xml = Txq_xml.Xml
module Parse = Txq_xml.Parse
module Print = Txq_xml.Print
module Vnode = Txq_vxml.Vnode
module Eid = Txq_vxml.Eid
module Timestamp = Txq_temporal.Timestamp
module Interval = Txq_temporal.Interval
module Config = Txq_db.Config
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Journal_record = Txq_db.Journal_record
module History = Txq_core.History
module Scan = Txq_core.Scan
module Pattern = Txq_core.Pattern
module Gen_xml = Txq_test_support.Gen_xml
module Gen_store = Txq_test_support.Gen_store

let ts = Timestamp.of_string
let parse = Parse.parse_exn

(* --- the scripted workload ---------------------------------------------- *)

type op = Ins of string * Xml.t | Upd of string * Xml.t | Del of string

(* 20 operations over three URLs, with a deletion and a URL reused after
   deletion — every record type except Vacuum flows through the stream. *)
let workload =
  lazy
    (let st = Random.State.make [| 0x5417; 2002 |] in
     let cur = Hashtbl.create 4 in
     let ops = ref [] in
     let push o = ops := o :: !ops in
     let ins u =
       let d = Gen_xml.gen_doc st in
       Hashtbl.replace cur u d;
       push (Ins (u, d))
     in
     let upd u =
       let d =
         Gen_xml.mutate ~rounds:(1 + Random.State.int st 3) (Hashtbl.find cur u) st
       in
       Hashtbl.replace cur u d;
       push (Upd (u, d))
     in
     let del u =
       Hashtbl.remove cur u;
       push (Del u)
     in
     ins "a"; upd "a"; ins "b"; upd "b"; upd "a"; ins "c"; upd "c"; upd "b";
     upd "a"; upd "c"; del "b"; upd "a"; upd "c"; ins "b"; upd "b"; upd "a";
     upd "c"; upd "b"; del "a"; upd "c";
     List.rev !ops)

let day = 86_400
let base_seconds = Timestamp.to_seconds (ts "01/06/2001")
let op_ts i = Timestamp.of_seconds (base_seconds + ((i + 1) * day))

let apply db i = function
  | Ins (u, x) -> ignore (Db.insert_document db ~url:u ~ts:(op_ts i) x)
  | Upd (u, x) -> ignore (Db.update_document db ~url:u ~ts:(op_ts i) x)
  | Del u -> Db.delete_document db ~url:u ~ts:(op_ts i) ()

let durable = Config.durable Config.default

(* --- state fingerprints -------------------------------------------------- *)

let patterns =
  lazy
    [
      Pattern.of_path_exn "//name";
      Pattern.of_path_exn "//item";
      Pattern.of_path_exn ~value:"pizza" "//name";
    ]

(* Everything equivalence cares about: every surviving version of every
   document rendered to XML, deletion marks, document times, DocHistory
   over the whole timeline, and TPatternScan (all-versions plus a snapshot
   probe at every operation instant). *)
let fingerprint ?(ts_probes = List.init 20 op_ts) db =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sorted l = List.sort String.compare l in
  List.iter
    (fun id ->
      let d = Db.doc db id in
      add "doc %d url=%s deleted=%s base=%d\n" id (Docstore.url d)
        (match Docstore.deleted_at d with
         | None -> "-"
         | Some t -> Timestamp.to_string t)
        (Docstore.first_version d);
      for v = Docstore.first_version d to Docstore.version_count d - 1 do
        add "  v%d @%s dt=%s %s\n" v
          (Timestamp.to_string (Docstore.ts_of_version d v))
          (match Docstore.doc_time_of_version d v with
           | None -> "-"
           | Some t -> Timestamp.to_string t)
          (Print.to_string (Vnode.to_xml (Db.reconstruct db id v)))
      done;
      List.iter
        (fun dv ->
          add "  hist %s v%d %s\n"
            (Eid.Temporal.to_string dv.History.dv_teid)
            dv.History.dv_version
            (Interval.to_string dv.History.dv_interval))
        (History.doc_history db id ~t1:Timestamp.minus_infinity
           ~t2:Timestamp.plus_infinity))
    (Db.doc_ids db);
  List.iteri
    (fun pi p ->
      let teids bindings =
        String.concat " "
          (sorted (List.map Eid.Temporal.to_string (Scan.to_teids db bindings)))
      in
      add "pat%d all: %s\n" pi (teids (Scan.tpattern_scan_all db p));
      List.iter
        (fun t ->
          add "pat%d @%s: %s\n" pi (Timestamp.to_string t)
            (teids (Scan.tpattern_scan db p t)))
        ts_probes)
    (Lazy.force patterns);
  Buffer.contents buf

(* --- helpers ------------------------------------------------------------- *)

let stream_of_list l =
  let rem = ref l in
  fun () ->
    match !rem with
    | [] -> None
    | x :: tl ->
      rem := tl;
      Some x

(* Pull until the replica sits at the primary's durable watermark. *)
let rec catch_up primary r =
  let batch = Db.ship primary ~from:(Db.Replay.applied r) () in
  if batch <> [] then begin
    ignore (Db.apply_stream r (stream_of_list batch) : int);
    catch_up primary r
  end

let loaded_primary ?(config = durable) () =
  let db = Db.create ~config () in
  List.iteri (apply db) (Lazy.force workload);
  db

(* --- shipment codec ------------------------------------------------------ *)

let arb_shipment =
  let gen =
    QCheck.Gen.(
      int_range 0 1_000_000 >>= fun sh_index ->
      QCheck.gen Gen_store.arb_record >>= fun record ->
      list_size (int_range 0 3)
        (string_size ~gen:char (int_range 0 2_000)) >>= fun sh_contents ->
      return
        { Journal_record.sh_index;
          sh_payload = Journal_record.encode record;
          sh_contents })
  in
  QCheck.make
    ~print:(fun sh ->
      Printf.sprintf "index %d, %d payload bytes, %d content(s)"
        sh.Journal_record.sh_index
        (String.length sh.Journal_record.sh_payload)
        (List.length sh.Journal_record.sh_contents))
    gen

let prop_shipment_codec_roundtrip =
  QCheck.Test.make ~count:300 ~name:"shipment codec: encode/decode round-trip"
    arb_shipment (fun sh ->
      match Journal_record.decode_shipment (Journal_record.encode_shipment sh) with
      | Ok sh' ->
        sh'.Journal_record.sh_index = sh.Journal_record.sh_index
        && String.equal sh'.Journal_record.sh_payload sh.Journal_record.sh_payload
        && List.equal String.equal sh'.Journal_record.sh_contents
             sh.Journal_record.sh_contents
      | Error _ -> false)

(* --- basic replication --------------------------------------------------- *)

(* Ship the whole workload to a fresh replica: full-surface equality, and
   the replica's mutators refuse. *)
let test_replicate_full () =
  let primary = loaded_primary () in
  let r = Db.Replay.create ~config:(Db.config primary) () in
  catch_up primary r;
  let rdb = Db.Replay.db r in
  Alcotest.(check int) "all records applied" (Db.durable_records primary)
    (Db.Replay.applied r);
  Alcotest.(check string) "replica state = primary state"
    (fingerprint primary) (fingerprint rdb);
  Alcotest.(check int) "commit counters agree" (Db.stats primary).Db.commits
    (Db.stats rdb).Db.commits;
  Alcotest.(check bool) "replica flag" true (Db.is_replica rdb);
  (match Db.insert_document rdb ~url:"z" (parse "<a/>") with
   | (_ : Eid.doc_id) -> Alcotest.fail "replica accepted a write"
   | exception Invalid_argument _ -> ());
  (* an empty pull at the watermark is legal and a no-op *)
  Alcotest.(check int) "caught-up pull is empty" 0
    (List.length (Db.ship primary ~from:(Db.Replay.applied r) ()))

(* Shipments below the replica's position are skipped (poll overlap);
   beyond it they are refused (a gap must never be papered over). *)
let test_apply_overlap_and_gap () =
  let primary = loaded_primary () in
  let r = Db.Replay.create ~config:(Db.config primary) () in
  let all = Db.ship primary ~from:0 ~limit:1_000 () in
  ignore (Db.apply_stream r (stream_of_list all) : int);
  let fp = fingerprint (Db.Replay.db r) in
  (* replaying the whole stream again is a silent no-op *)
  ignore (Db.apply_stream r (stream_of_list all) : int);
  Alcotest.(check string) "overlap is idempotent" fp
    (fingerprint (Db.Replay.db r));
  let r2 = Db.Replay.create ~config:(Db.config primary) () in
  (match Db.Replay.apply r2 (List.nth all 3) with
   | () -> Alcotest.fail "expected Replay_error on a gap"
   | exception Db.Replay_error _ -> ())

(* Promotion: a detached replica is writable and its clock continues
   strictly after everything replicated. *)
let test_detach_promotes () =
  let primary = loaded_primary () in
  let r = Db.Replay.create ~config:(Db.config primary) () in
  catch_up primary r;
  let db = Db.Replay.detach r in
  Alcotest.(check bool) "no longer a replica" false (Db.is_replica db);
  let before = fingerprint db in
  let id = Db.insert_document db ~url:"promoted" (parse "<a>new</a>") in
  let d = Db.doc db id in
  let new_ts = Docstore.ts_of_version d 0 in
  Alcotest.(check bool) "promotion commit is after replicated history" true
    (Timestamp.compare new_ts (op_ts 19) > 0);
  Alcotest.(check bool) "state advanced" true (before <> fingerprint db)

(* --- the kill sweep ------------------------------------------------------ *)

(* Kill the replica after every record boundary k: recover its disk alone,
   demand the serial-replay prefix of exactly k records, then resume the
   stream from k and demand convergence with the primary. *)
let test_kill_at_every_boundary () =
  let primary = loaded_primary () in
  let all = Db.ship primary ~from:0 ~limit:1_000 () in
  let n = List.length all in
  Alcotest.(check int) "workload ships fully" (Db.durable_records primary) n;
  (* serial-replay prefix fingerprints from one reference replica *)
  let rfps = Array.make (n + 1) "" in
  let ref_r = Db.Replay.create ~config:durable () in
  rfps.(0) <- fingerprint (Db.Replay.db ref_r);
  List.iteri
    (fun i sh ->
      Db.Replay.apply ref_r sh;
      rfps.(i + 1) <- fingerprint (Db.Replay.db ref_r))
    all;
  Alcotest.(check string) "reference replica converges"
    (fingerprint primary) rfps.(n);
  let take k l = List.filteri (fun i _ -> i < k) l in
  let drop k l = List.filteri (fun i _ -> i >= k) l in
  for k = 0 to n do
    let r = Db.Replay.create ~config:durable () in
    ignore (Db.apply_stream r (stream_of_list (take k all)) : int);
    (* the kill: all that survives is the replica's disk *)
    let rdb = Db.recover (Db.disk (Db.Replay.db r)) durable in
    Alcotest.(check string)
      (Printf.sprintf "killed at %d: recovered = %d-record prefix" k k)
      rfps.(k) (fingerprint rdb);
    let r2 = Db.Replay.of_db rdb in
    Alcotest.(check int)
      (Printf.sprintf "killed at %d: resume position" k)
      k (Db.Replay.applied r2);
    ignore (Db.apply_stream r2 (stream_of_list (drop k all)) : int);
    Alcotest.(check string)
      (Printf.sprintf "killed at %d: resumed replica converges" k)
      rfps.(n)
      (fingerprint (Db.Replay.db r2))
  done

(* --- differential: replica vs MVCC snapshot ------------------------------ *)

let take_n k l = List.filteri (fun i _ -> i < k) l
let drop_n k l = List.filteri (fun i _ -> i >= k) l

(* Cut a random document history at a random point k, ship the first k
   commits to a replica, pin an MVCC snapshot on the primary, then let the
   writer race ahead.  The replica (frozen at watermark k) must render
   byte-identically to the snapshot (pinned at watermark k). *)
let prop_replica_equals_snapshot =
  QCheck.Test.make ~count:25
    ~name:"replica at watermark k = primary snapshot at k (live writer)"
    (QCheck.make
       ~print:(fun ((_d, succs), cut) ->
         Printf.sprintf "%d versions, cut %d" (1 + List.length succs) cut)
       QCheck.Gen.(pair (Gen_xml.gen_history ~max_versions:9) (int_range 0 1000)))
    (fun ((doc0, succs), cut_seed) ->
      let n = 1 + List.length succs in
      let cut = 1 + (cut_seed mod n) in
      let primary = Db.create ~config:durable () in
      let step i x =
        if i = 0 then ignore (Db.insert_document primary ~url:"h" ~ts:(op_ts 0) x)
        else ignore (Db.update_document primary ~url:"h" ~ts:(op_ts i) x)
      in
      List.iteri step (take_n cut (doc0 :: succs));
      let r = Db.Replay.create ~config:durable () in
      catch_up primary r;
      let snap = Db.snapshot primary in
      (* the live writer races ahead of both *)
      List.iteri
        (fun i x -> step (cut + i) x)
        (drop_n cut (doc0 :: succs));
      let probes = List.init n op_ts in
      let ok =
        String.equal
          (fingerprint ~ts_probes:probes (Db.Replay.db r))
          (fingerprint ~ts_probes:probes snap)
      in
      Db.release snap;
      ok
      && Db.snapshot_watermark snap = Some (Db.stats (Db.Replay.db r)).Db.commits)

(* --- vacuum through the stream ------------------------------------------- *)

let retention = lazy { Config.no_retention with Config.keep_newer_than = Some (op_ts 12) }

(* With a ship buffer, vacuum flows through the stream: an already-caught-up
   replica applies the Vacuum record, and a from-scratch clone still works
   because the ring retains the truncated history's contents. *)
let test_vacuum_ships () =
  let config = Config.with_ship_buffer 4_096 durable in
  let primary = loaded_primary ~config () in
  let r = Db.Replay.create ~config () in
  catch_up primary r;
  ignore (Db.vacuum ~retention:(Lazy.force retention) primary : Db.vacuum_report);
  Alcotest.(check bool) "vacuum shipped as one record" true
    (Db.durable_records primary > Db.Replay.applied r);
  catch_up primary r;
  Alcotest.(check string) "caught-up replica applies the vacuum"
    (fingerprint primary)
    (fingerprint (Db.Replay.db r));
  (* a clone started after the vacuum replays the full stream from the ring *)
  let r2 = Db.Replay.create ~config () in
  catch_up primary r2;
  Alcotest.(check string) "post-vacuum clone converges" (fingerprint primary)
    (fingerprint (Db.Replay.db r2))

(* Without a ship buffer, vacuumed history is gone: a from-scratch ship
   raises Ship_gap — but shipping from the vacuum record onward still
   works, and the caught-up replica keeps following. *)
let test_vacuum_gap_without_buffer () =
  let primary = loaded_primary () in
  let r = Db.Replay.create ~config:durable () in
  catch_up primary r;
  ignore (Db.vacuum ~retention:(Lazy.force retention) primary : Db.vacuum_report);
  catch_up primary r;
  Alcotest.(check string) "caught-up replica survives the vacuum"
    (fingerprint primary)
    (fingerprint (Db.Replay.db r));
  match Db.ship primary ~from:0 ~limit:1_000 () with
  | (_ : Journal_record.shipment list) ->
    Alcotest.fail "expected Ship_gap on vacuumed history"
  | exception Db.Ship_gap i ->
    Alcotest.(check bool) "gap names a truncated record" true (i >= 0)

(* --- point-in-time restore ----------------------------------------------- *)

(* Restore at every commit instant of the workload and compare against an
   oracle built from just the first commits: byte-identical fingerprints,
   and the boundary is inclusive. *)
let test_restore_as_of_sweep () =
  let primary = loaded_primary () in
  let ops = Lazy.force workload in
  let n = List.length ops in
  let fps = Array.make (n + 1) "" in
  let oracle = Db.create ~config:durable () in
  fps.(0) <- fingerprint oracle;
  List.iteri
    (fun i op ->
      apply oracle i op;
      fps.(i + 1) <- fingerprint oracle)
    ops;
  (* before the first commit: an empty store *)
  let empty =
    Db.restore_as_of primary ~as_of:(Timestamp.of_seconds (base_seconds - 1))
  in
  Alcotest.(check string) "restore before history is empty" fps.(0)
    (fingerprint empty);
  for i = 0 to n - 1 do
    let restored = Db.restore_as_of primary ~as_of:(op_ts i) in
    Alcotest.(check string)
      (Printf.sprintf "restore as-of op %d = first %d commits" i (i + 1))
      fps.(i + 1) (fingerprint restored);
    (match Db.verify restored with
     | Ok _ -> ()
     | Error errs ->
       Alcotest.failf "restore as-of op %d: verify failed: %s" i
         (String.concat "; " errs))
  done;
  (* strictly between two commits, the earlier one wins (inclusive rule) *)
  let mid =
    Db.restore_as_of primary
      ~as_of:(Timestamp.of_seconds (Timestamp.to_seconds (op_ts 7) + 1))
  in
  Alcotest.(check string) "between commits rounds down" fps.(8) (fingerprint mid)

(* Satellite: the restored store's clock resumes strictly after the restored
   watermark — a write with no explicit timestamp lands after every restored
   commit, and per-document transaction times stay strictly increasing. *)
let test_restore_clock_monotone () =
  let primary = loaded_primary () in
  let restored = Db.restore_as_of primary ~as_of:(op_ts 9) in
  let horizon = op_ts 9 in
  Alcotest.(check bool) "clock caught up to the restored watermark" true
    (Timestamp.compare (Db.now restored) horizon >= 0);
  (* write without ~ts: must be stamped strictly after the watermark *)
  ignore (Db.update_document restored ~url:"a" (parse "<a>after restore</a>"));
  ignore (Db.insert_document restored ~url:"fresh" (parse "<f/>"));
  List.iter
    (fun id ->
      let d = Db.doc restored id in
      let prev = ref Timestamp.minus_infinity in
      for v = Docstore.first_version d to Docstore.version_count d - 1 do
        let t = Docstore.ts_of_version d v in
        if Timestamp.compare t !prev <= 0 then
          Alcotest.failf "doc %d v%d: transaction time not strictly increasing"
            id v;
        prev := t
      done)
    (Db.doc_ids restored);
  let d = Option.get (Db.find_live restored "a") in
  Alcotest.(check bool) "new commit after restored history" true
    (Timestamp.compare
       (Docstore.ts_of_version d (Docstore.version_count d - 1))
       horizon
     > 0);
  (match Db.verify restored with
   | Ok _ -> ()
   | Error errs -> Alcotest.failf "verify failed: %s" (String.concat "; " errs))

let () =
  Alcotest.run "ship"
    [
      ("codec", [ QCheck_alcotest.to_alcotest prop_shipment_codec_roundtrip ]);
      ( "replication",
        [
          Alcotest.test_case "full stream replicates exactly" `Quick
            test_replicate_full;
          Alcotest.test_case "overlap skipped, gap refused" `Quick
            test_apply_overlap_and_gap;
          Alcotest.test_case "detach promotes" `Quick test_detach_promotes;
        ] );
      ( "kill points",
        [
          Alcotest.test_case "killed at every record boundary" `Slow
            test_kill_at_every_boundary;
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_replica_equals_snapshot ] );
      ( "vacuum",
        [
          Alcotest.test_case "vacuum flows through a buffered stream" `Quick
            test_vacuum_ships;
          Alcotest.test_case "unbuffered vacuum gaps a fresh clone" `Quick
            test_vacuum_gap_without_buffer;
        ] );
      ( "restore",
        [
          Alcotest.test_case "as-of sweep vs prefix oracle" `Slow
            test_restore_as_of_sweep;
          Alcotest.test_case "restored clock is monotone" `Quick
            test_restore_clock_monotone;
        ] );
    ]
