open Txq_store

(* --- disk ------------------------------------------------------------- *)

let test_disk_alloc_rw () =
  let d = Disk.create () in
  let p0 = Disk.alloc d and p1 = Disk.alloc d in
  Alcotest.(check int) "sequential ids" 1 (p1 - p0);
  Disk.write d p0 (Bytes.of_string "hello");
  let got = Disk.read d p0 in
  Alcotest.(check string) "contents" "hello" (Bytes.sub_string got 0 5);
  Alcotest.(check int) "zero padding" 0 (Char.code (Bytes.get got 5));
  Alcotest.(check int) "page count" 2 (Disk.page_count d)

let test_disk_bounds () =
  let d = Disk.create () in
  Alcotest.check_raises "read out of range"
    (Invalid_argument "Disk: bad page id 0 (of 0)") (fun () ->
      ignore (Disk.read d 0))

let test_disk_seek_accounting () =
  let d = Disk.create () in
  let pages = List.init 10 (fun _ -> Disk.alloc d) in
  List.iter (fun p -> Disk.write d p (Bytes.of_string "x")) pages;
  let before = Io_stats.copy (Disk.stats d) in
  (* sequential scan: no seeks beyond the first repositioning *)
  List.iter (fun p -> ignore (Disk.read d p)) pages;
  let seq = Io_stats.diff ~after:(Io_stats.copy (Disk.stats d)) ~before in
  (* random-ish far jumps: every access seeks *)
  let before = Io_stats.copy (Disk.stats d) in
  List.iter (fun p -> ignore (Disk.read d p)) [0; 5; 1; 7; 3];
  let rnd = Io_stats.diff ~after:(Io_stats.copy (Disk.stats d)) ~before in
  Alcotest.(check int) "sequential reads" 10 seq.Io_stats.page_reads;
  Alcotest.(check bool) "sequential mostly seek-free" true
    (seq.Io_stats.seeks <= 1);
  Alcotest.(check int) "jumping seeks every time" 5 rnd.Io_stats.seeks

(* --- buffer pool ------------------------------------------------------ *)

let test_pool_caches () =
  let d = Disk.create () in
  let pool = Buffer_pool.create ~capacity:4 d in
  let p = Buffer_pool.alloc pool in
  Buffer_pool.write pool p (Bytes.of_string "data");
  let before = Io_stats.copy (Buffer_pool.stats pool) in
  ignore (Buffer_pool.read pool p);
  ignore (Buffer_pool.read pool p);
  let after = Io_stats.diff ~after:(Io_stats.copy (Buffer_pool.stats pool)) ~before in
  Alcotest.(check int) "no disk reads" 0 after.Io_stats.page_reads;
  Alcotest.(check int) "two hits" 2 after.Io_stats.cache_hits

let test_pool_evicts_lru () =
  let d = Disk.create () in
  let pool = Buffer_pool.create ~capacity:2 d in
  let p0 = Buffer_pool.alloc pool
  and p1 = Buffer_pool.alloc pool
  and p2 = Buffer_pool.alloc pool in
  List.iter (fun p -> Buffer_pool.write pool p (Bytes.of_string "x")) [p0; p1; p2];
  (* capacity 2: p0 was evicted when p2 arrived *)
  ignore (Buffer_pool.read pool p1);
  let before = Io_stats.copy (Buffer_pool.stats pool) in
  ignore (Buffer_pool.read pool p0);
  let after = Io_stats.diff ~after:(Io_stats.copy (Buffer_pool.stats pool)) ~before in
  Alcotest.(check int) "miss on evicted page" 1 after.Io_stats.cache_misses;
  Alcotest.(check int) "re-read from disk" 1 after.Io_stats.page_reads

let test_pool_flush () =
  let d = Disk.create () in
  let pool = Buffer_pool.create ~capacity:4 d in
  let p = Buffer_pool.alloc pool in
  Buffer_pool.write pool p (Bytes.of_string "persisted");
  Buffer_pool.flush pool;
  let got = Buffer_pool.read pool p in
  Alcotest.(check string) "survives flush" "persisted" (Bytes.sub_string got 0 9)

(* --- blob store ------------------------------------------------------- *)

let mk_store ?policy () =
  let d = Disk.create () in
  let pool = Buffer_pool.create ~capacity:64 d in
  (Blob_store.create ?policy pool, pool)

let test_blob_roundtrip () =
  let store, _ = mk_store () in
  let small = "tiny" in
  let big = String.init 10_000 (fun i -> Char.chr (Char.code 'a' + (i mod 26))) in
  let b1 = Blob_store.put store small in
  let b2 = Blob_store.put store big in
  Alcotest.(check string) "small roundtrip" small (Blob_store.get store b1);
  Alcotest.(check string) "multi-page roundtrip" big (Blob_store.get store b2);
  Alcotest.(check int) "page math" 3 (Blob_store.pages_used b2)

let test_blob_empty () =
  let store, _ = mk_store () in
  let b = Blob_store.put store "" in
  Alcotest.(check string) "empty blob" "" (Blob_store.get store b)

let seeks_for_cluster_scan ~policy =
  let store, pool = mk_store ~policy () in
  (* interleave writes of two "documents" so unclustered placement spreads
     each document's blobs *)
  let blobs_a = ref [] and blobs_b = ref [] in
  for i = 0 to 19 do
    let payload = Printf.sprintf "%d-%s" i (String.make 600 'x') in
    blobs_a := Blob_store.put store ~cluster:1 payload :: !blobs_a;
    blobs_b := Blob_store.put store ~cluster:2 payload :: !blobs_b
  done;
  Buffer_pool.flush pool;
  Io_stats.reset (Buffer_pool.stats pool);
  List.iter (fun b -> ignore (Blob_store.get store b)) (List.rev !blobs_a);
  (Buffer_pool.stats pool).Io_stats.seeks

let test_blob_clustering () =
  let unclustered = seeks_for_cluster_scan ~policy:`Unclustered in
  let clustered = seeks_for_cluster_scan ~policy:(`Clustered 16) in
  Alcotest.(check bool)
    (Printf.sprintf "clustered (%d) has fewer seeks than unclustered (%d)"
       clustered unclustered)
    true
    (clustered < unclustered)

let prop_blob_roundtrip =
  QCheck.Test.make ~count:200 ~name:"blob roundtrip (arbitrary strings)"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 9000) QCheck.Gen.char)
    (fun s ->
      let store, _ = mk_store () in
      let b = Blob_store.put store s in
      String.equal s (Blob_store.get store b))

(* --- vec ---------------------------------------------------------------- *)

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  Alcotest.(check bool) "no last" true (Vec.last v = None);
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 84 (Vec.get v 42);
  Alcotest.(check (option int)) "last" (Some 198) (Vec.last v);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check int) "fold" 100 (Vec.fold_left (fun n _ -> n + 1) 0 v);
  Alcotest.check_raises "bounds" (Invalid_argument "Vec: index 100 out of bounds (len 100)")
    (fun () -> ignore (Vec.get v 100))

let prop_vec_find_last_index =
  QCheck.Test.make ~count:300 ~name:"vec find_last_index ≡ linear scan"
    QCheck.(pair (int_bound 50) (int_bound 60))
    (fun (n, threshold) ->
      let v = Vec.create () in
      for i = 0 to n - 1 do
        Vec.push v (i * 2) (* monotone values *)
      done;
      let via_binary = Vec.find_last_index (fun x -> x <= threshold) v in
      let via_scan =
        let best = ref None in
        Vec.iteri (fun i x -> if x <= threshold then best := Some i) v;
        !best
      in
      via_binary = via_scan)

(* Single-writer / multi-reader publication: while one domain pushes,
   reader domains must only ever observe a consistent prefix — every
   index below the length they saw holds its final value, across
   reallocations.  (The seed Vec published the grown array with a plain
   store, which let readers see uninitialized slots on weak memory.) *)
let test_vec_concurrent_readers () =
  let v = Vec.create () in
  let total = 20_000 in
  let readers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let ok = ref true in
            let seen = ref 0 in
            while !seen < total do
              let n = Vec.length v in
              for i = !seen to n - 1 do
                if Vec.get v i <> i * 3 then ok := false
              done;
              (match Vec.last v with
               | Some x when n > 0 && x mod 3 <> 0 -> ok := false
               | _ -> ());
              if n > !seen then seen := n else Domain.cpu_relax ()
            done;
            !ok))
  in
  for i = 0 to total - 1 do
    Vec.push v (i * 3)
  done;
  List.iter
    (fun d ->
      Alcotest.(check bool) "reader saw a consistent prefix" true
        (Domain.join d))
    readers

(* --- bptree -------------------------------------------------------------- *)

let mk_tree () =
  let d = Disk.create () in
  let pool = Buffer_pool.create ~capacity:256 d in
  (Bptree.create pool, pool)

let test_bptree_empty () =
  let t, _ = mk_tree () in
  Alcotest.(check (option (pair int64 int64))) "find in empty" None
    (Bptree.find t 5L);
  Alcotest.(check int) "no entries" 0 (Bptree.entry_count t);
  Alcotest.(check int) "height 1" 1 (Bptree.height t);
  Alcotest.(check (list (pair int64 (pair int64 int64)))) "empty range" []
    (Bptree.range t ~lo:0L ~hi:100L)

let test_bptree_basic () =
  let t, _ = mk_tree () in
  Bptree.insert t ~key:10L (1L, 2L);
  Bptree.insert t ~key:5L (3L, 4L);
  Bptree.insert t ~key:20L (5L, 6L);
  Alcotest.(check (option (pair int64 int64))) "find 5" (Some (3L, 4L))
    (Bptree.find t 5L);
  Alcotest.(check (option (pair int64 int64))) "find 10" (Some (1L, 2L))
    (Bptree.find t 10L);
  Alcotest.(check (option (pair int64 int64))) "miss" None (Bptree.find t 7L);
  (* upsert *)
  Bptree.insert t ~key:10L (9L, 9L);
  Alcotest.(check (option (pair int64 int64))) "upsert" (Some (9L, 9L))
    (Bptree.find t 10L);
  Alcotest.(check int) "entry count ignores upserts" 3 (Bptree.entry_count t);
  Alcotest.(check (list int64)) "range keys in order" [5L; 10L]
    (List.map fst (Bptree.range t ~lo:1L ~hi:11L))

let test_bptree_splits () =
  let t, _ = mk_tree () in
  let n = 10_000 in
  (* insert in a mixed order: even keys descending, odd ascending *)
  for i = n downto 0 do
    if i mod 2 = 0 then Bptree.insert t ~key:(Int64.of_int i) (Int64.of_int i, 0L)
  done;
  for i = 0 to n do
    if i mod 2 = 1 then Bptree.insert t ~key:(Int64.of_int i) (Int64.of_int i, 1L)
  done;
  Alcotest.(check int) "all entries" (n + 1) (Bptree.entry_count t);
  Alcotest.(check bool) "tree grew" true (Bptree.height t >= 2);
  Alcotest.(check bool) "pages allocated" true (Bptree.page_count t > 10);
  (* spot checks *)
  for i = 0 to 100 do
    let k = Int64.of_int (i * 97) in
    if i * 97 <= n then
      Alcotest.(check bool)
        (Printf.sprintf "find %d" (i * 97))
        true
        (Bptree.find t k <> None)
  done;
  (* full scan is sorted and complete *)
  let count = ref 0 and prev = ref Int64.min_int in
  Bptree.iter t (fun k _ ->
      incr count;
      Alcotest.(check bool) "sorted" true (Int64.compare !prev k < 0);
      prev := k);
  Alcotest.(check int) "iter sees all" (n + 1) !count

let prop_bptree_vs_map =
  let module M = Map.Make (Int64) in
  QCheck.Test.make ~count:60 ~name:"bptree ≡ Map (random ops)"
    QCheck.(
      list_of_size (QCheck.Gen.int_range 0 400)
        (pair (map Int64.of_int (int_bound 500)) (map Int64.of_int small_nat)))
    (fun ops ->
      let t, _ = mk_tree () in
      let model =
        List.fold_left
          (fun m (k, v) ->
            Bptree.insert t ~key:k (v, Int64.neg v);
            M.add k (v, Int64.neg v) m)
          M.empty ops
      in
      (* point lookups *)
      List.for_all
        (fun k -> Bptree.find t k = M.find_opt k model)
        (List.init 60 (fun i -> Int64.of_int (i * 10)))
      (* range scan *)
      && Bptree.range t ~lo:100L ~hi:300L
         = M.bindings
             (M.filter (fun k _ -> Int64.compare 100L k <= 0 && Int64.compare k 300L < 0) model)
      && Bptree.entry_count t = M.cardinal model)

(* --- journal tailer ---------------------------------------------------- *)

let mk_journal () =
  let disk = Disk.create () in
  let pool = Buffer_pool.create ~capacity:32 disk in
  (disk, Journal.create pool)

(* The tailer streams records in append order, reports Tail_wait at the
   committed frontier, and resumes when more records land. *)
let test_tailer_streams () =
  let disk, j = mk_journal () in
  Journal.append j "one";
  Journal.append j (String.make 9_000 'x');
  let tl = Journal.tailer (Buffer_pool.create ~capacity:32 disk) in
  Alcotest.(check int) "starts at 0" 0 (Journal.tailer_position tl);
  (match Journal.tail_next tl with
   | Journal.Tail_record s -> Alcotest.(check string) "first" "one" s
   | _ -> Alcotest.fail "expected a record");
  (match Journal.tail_next tl with
   | Journal.Tail_record s ->
     Alcotest.(check int) "multi-page record" 9_000 (String.length s)
   | _ -> Alcotest.fail "expected a record");
  (match Journal.tail_next tl with
   | Journal.Tail_wait -> ()
   | _ -> Alcotest.fail "expected Tail_wait at the frontier");
  Alcotest.(check int) "wait does not advance" 2 (Journal.tailer_position tl);
  Journal.append j "three";
  (match Journal.tail_next tl with
   | Journal.Tail_record s -> Alcotest.(check string) "resumes" "three" s
   | _ -> Alcotest.fail "expected the new record")

(* A torn append burns its sequence number: the tailer distinguishes the
   still-torn frontier (Tail_wait) from a burned number with a committed
   record beyond it (Tail_gap), and steps over the latter exactly once. *)
let test_tailer_gap_vs_wait () =
  let disk, j = mk_journal () in
  Journal.append j "first";
  Disk.fail_after_writes disk 2;
  (match Journal.append j (String.make 9_000 'y') with
   | () -> Alcotest.fail "expected a crash"
   | exception Disk.Crash -> ());
  Disk.clear_fault disk;
  let tl = Journal.tailer (Buffer_pool.create ~capacity:32 disk) in
  (match Journal.tail_next tl with
   | Journal.Tail_record s -> Alcotest.(check string) "first" "first" s
   | _ -> Alcotest.fail "expected a record");
  (* nothing beyond the torn record yet: could still be an append in flight *)
  (match Journal.tail_next tl with
   | Journal.Tail_wait -> ()
   | _ -> Alcotest.fail "expected Tail_wait on the torn frontier");
  (* a record lands beyond the torn one: now it is provably a gap *)
  let r = Journal.recover (Buffer_pool.create ~capacity:32 disk) in
  Journal.append r.Journal.journal "second";
  (match Journal.tail_next tl with
   | Journal.Tail_gap seq -> Alcotest.(check int) "burned seq" 1 seq
   | _ -> Alcotest.fail "expected Tail_gap");
  (match Journal.tail_next tl with
   | Journal.Tail_record s -> Alcotest.(check string) "after gap" "second" s
   | _ -> Alcotest.fail "expected the record after the gap")

(* --- disk directory save/load ------------------------------------------ *)

let fill_disk () =
  let d = Disk.create () in
  let st = Random.State.make [| 0xd15c; 7 |] in
  for _ = 1 to 100 do
    let p = Disk.alloc d in
    let b = Bytes.init (1 + Random.State.int st Disk.page_size) (fun _ ->
        Char.chr (Random.State.int st 256)) in
    Disk.write d p b
  done;
  d

let disks_equal a b =
  Disk.page_count a = Disk.page_count b
  && List.for_all
       (fun i -> Bytes.equal (Disk.read a i) (Disk.read b i))
       (List.init (Disk.page_count a) Fun.id)

let in_tmp f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "txq-store-test-%d" (Unix.getpid ()))
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then rm dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let test_save_load_roundtrip () =
  in_tmp @@ fun dir ->
  let d = fill_disk () in
  let target = Filename.concat dir "image" in
  Disk.save_to_dir d target;
  Alcotest.(check bool) "round-trips" true
    (disks_equal d (Disk.load_from_dir target));
  (* the target is create-only: a second save must refuse, not clobber *)
  (match Disk.save_to_dir d target with
   | () -> Alcotest.fail "expected Invalid_argument on an existing target"
   | exception Invalid_argument _ -> ());
  (match Disk.load_from_dir (Filename.concat dir "nowhere") with
   | (_ : Disk.t) -> Alcotest.fail "expected Failure on a missing image"
   | exception Failure _ -> ())

(* Crash the save at every filesystem-operation boundary (torn mkdir, torn
   chunk, torn manifest, torn rename): the target directory must never
   appear — all the debris a crash may leave is the staging directory,
   which the next save sweeps away. *)
let test_save_crash_sweep () =
  in_tmp @@ fun dir ->
  let d = fill_disk () in
  let before = Disk.fs_ops d in
  Disk.save_to_dir d (Filename.concat dir "count");
  let full_ops = Disk.fs_ops d - before in
  Alcotest.(check bool)
    (Printf.sprintf "save is multi-step (%d fs ops)" full_ops)
    true (full_ops >= 3);
  let target = Filename.concat dir "image" in
  for i = 1 to full_ops do
    Disk.fail_after_writes d i;
    (match Disk.save_to_dir d target with
     | () -> Alcotest.failf "fs op %d of %d did not crash the save" i full_ops
     | exception Disk.Crash -> ());
    Disk.clear_fault d;
    if Sys.file_exists target then
      Alcotest.failf "crash at fs op %d exposed a torn target directory" i
  done;
  (* the retry after the last crash succeeds over the leftover staging *)
  Disk.save_to_dir d target;
  Alcotest.(check bool) "uncrashed retry round-trips" true
    (disks_equal d (Disk.load_from_dir target))

let () =
  Alcotest.run "store"
    [
      ( "disk",
        [
          Alcotest.test_case "alloc/read/write" `Quick test_disk_alloc_rw;
          Alcotest.test_case "bounds" `Quick test_disk_bounds;
          Alcotest.test_case "seek accounting" `Quick test_disk_seek_accounting;
          Alcotest.test_case "save/load round-trip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "save crash sweep" `Quick test_save_crash_sweep;
        ] );
      ( "journal tailer",
        [
          Alcotest.test_case "streams records in order" `Quick
            test_tailer_streams;
          Alcotest.test_case "gap vs wait" `Quick test_tailer_gap_vs_wait;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "caches reads" `Quick test_pool_caches;
          Alcotest.test_case "LRU eviction" `Quick test_pool_evicts_lru;
          Alcotest.test_case "flush" `Quick test_pool_flush;
        ] );
      ( "blob_store",
        [
          Alcotest.test_case "roundtrip" `Quick test_blob_roundtrip;
          Alcotest.test_case "empty blob" `Quick test_blob_empty;
          Alcotest.test_case "clustering reduces seeks" `Quick test_blob_clustering;
          QCheck_alcotest.to_alcotest prop_blob_roundtrip;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "concurrent readers" `Quick
            test_vec_concurrent_readers;
          QCheck_alcotest.to_alcotest prop_vec_find_last_index;
        ] );
      ( "bptree",
        [
          Alcotest.test_case "empty" `Quick test_bptree_empty;
          Alcotest.test_case "basics" `Quick test_bptree_basic;
          Alcotest.test_case "splits at scale" `Quick test_bptree_splits;
          QCheck_alcotest.to_alcotest prop_bptree_vs_map;
        ] );
    ]
