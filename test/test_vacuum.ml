(* Retention vacuum: space reclamation, version-number stability, and the
   differential property at the heart of the feature — every temporal
   operator, restricted to the retained window, answers exactly as an
   unvacuumed oracle over the same history. *)

module Xml = Txq_xml.Xml
module Parse = Txq_xml.Parse
module Print = Txq_xml.Print
module Vnode = Txq_vxml.Vnode
module Eid = Txq_vxml.Eid
module Timestamp = Txq_temporal.Timestamp
module Interval = Txq_temporal.Interval
module Config = Txq_db.Config
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module History = Txq_core.History
module Scan = Txq_core.Scan
module Pattern = Txq_core.Pattern
module Lifetime = Txq_core.Lifetime
module Gen_xml = Txq_test_support.Gen_xml

let ts = Timestamp.of_string
let parse = Parse.parse_exn
let day = 86_400
let base_seconds = Timestamp.to_seconds (ts "01/06/2001")
let op_ts i = Timestamp.of_seconds (base_seconds + ((i + 1) * day))

let horizon_only h =
  { Config.no_retention with Config.keep_newer_than = Some h }

let keep_last k =
  { Config.no_retention with Config.keep_versions = Some k }

let versions_doc n =
  List.init n (fun i -> parse (Printf.sprintf "<doc><item>v%d</item></doc>" i))

let build_chain ?(config = Config.default) ?(url = "u") n =
  let db = Db.create ~config () in
  List.iteri
    (fun i x ->
      if i = 0 then ignore (Db.insert_document db ~url ~ts:(op_ts i) x)
      else ignore (Db.update_document db ~url ~ts:(op_ts i) x))
    (versions_doc n);
  db

(* --- unit tests --------------------------------------------------------- *)

let test_keep_versions_squash () =
  let db = build_chain 8 in
  let id = (Option.get (Db.find_live db "u") : Docstore.t) |> Docstore.doc_id in
  let before =
    List.init 8 (fun v -> Print.to_string (Vnode.to_xml (Db.reconstruct db id v)))
  in
  let pages0 = Db.live_pages db in
  let report = Db.vacuum ~retention:(keep_last 3) db in
  let d = Db.doc db id in
  Alcotest.(check int) "base advances" 5 (Docstore.first_version d);
  Alcotest.(check int) "external numbering stable" 8 (Docstore.version_count d);
  Alcotest.(check int) "versions dropped" 5 report.Db.vr_versions_dropped;
  Alcotest.(check bool) "pages freed" true (report.Db.vr_pages_freed > 0);
  Alcotest.(check int) "bytes = pages * page size"
    (report.Db.vr_pages_freed * Txq_store.Disk.page_size)
    report.Db.vr_bytes_reclaimed;
  Alcotest.(check bool) "live pages strictly decrease" true
    (Db.live_pages db < pages0);
  for v = 5 to 7 do
    Alcotest.(check string)
      (Printf.sprintf "version %d survives byte-for-byte" v)
      (List.nth before v)
      (Print.to_string (Vnode.to_xml (Db.reconstruct db id v)))
  done;
  (match Db.reconstruct db id 4 with
   | (_ : Vnode.t) -> Alcotest.fail "vacuumed version must not reconstruct"
   | exception Invalid_argument _ -> ());
  match Db.verify db with
  | Ok _ -> ()
  | Error errs -> Alcotest.failf "verify: %s" (String.concat "; " errs)

let test_horizon_drops_dead_doc () =
  let db = Db.create () in
  ignore (Db.insert_document db ~url:"dead" ~ts:(op_ts 0) (parse "<a>x</a>"));
  ignore (Db.update_document db ~url:"dead" ~ts:(op_ts 1) (parse "<a>y</a>"));
  Db.delete_document db ~url:"dead" ~ts:(op_ts 2) ();
  ignore (Db.insert_document db ~url:"live" ~ts:(op_ts 3) (parse "<b>z</b>"));
  let pages0 = Db.live_pages db in
  let report = Db.vacuum ~retention:(horizon_only (op_ts 5)) db in
  Alcotest.(check int) "dead doc dropped" 1 report.Db.vr_docs_dropped;
  Alcotest.(check (list int)) "only the live doc remains" [ 1 ] (Db.doc_ids db);
  Alcotest.(check bool) "URL bucket cleared" true (Db.find_all db "dead" = []);
  Alcotest.(check bool) "live pages strictly decrease" true
    (Db.live_pages db < pages0);
  (* document ids are never reused, even after the newest doc is dropped *)
  Db.delete_document db ~url:"live" ~ts:(op_ts 6) ();
  ignore (Db.vacuum ~retention:(horizon_only (op_ts 7)) db);
  Alcotest.(check (list int)) "all docs dropped" [] (Db.doc_ids db);
  let id = Db.insert_document db ~url:"next" ~ts:(op_ts 8) (parse "<c/>") in
  Alcotest.(check int) "fresh doc id after drop" 2 id

let test_vacuum_idempotent () =
  let db = build_chain 6 in
  let r1 = Db.vacuum ~retention:(keep_last 2) db in
  Alcotest.(check bool) "first vacuum acts" true (r1.Db.vr_versions_dropped > 0);
  let r2 = Db.vacuum ~retention:(keep_last 2) db in
  Alcotest.(check int) "second vacuum is a no-op" 0 r2.Db.vr_versions_dropped;
  Alcotest.(check int) "no pages freed twice" 0 r2.Db.vr_pages_freed;
  let r3 = Db.vacuum db in
  Alcotest.(check int) "empty policy is a no-op" 0 r3.Db.vr_versions_dropped

let test_current_always_survives () =
  let db = build_chain 4 in
  let report = Db.vacuum ~retention:(keep_last 1) db in
  Alcotest.(check int) "three versions dropped" 3 report.Db.vr_versions_dropped;
  let d = Option.get (Db.find_live db "u") in
  Alcotest.(check int) "current retained" 3 (Docstore.first_version d);
  (* horizon in the future never drops a live document *)
  let r2 = Db.vacuum ~retention:(horizon_only (op_ts 100)) db in
  Alcotest.(check int) "live doc never dropped" 0 r2.Db.vr_docs_dropped

let test_cretime_truncated_epoch () =
  let db = build_chain 6 in
  let id = Docstore.doc_id (Option.get (Db.find_live db "u")) in
  let root_eid =
    Eid.make ~doc:id ~xid:(Vnode.xid (Docstore.current (Db.doc db id)))
  in
  ignore (Db.vacuum ~retention:(keep_last 2) db);
  let d = Db.doc db id in
  let b = Docstore.first_version d in
  let teid = Eid.Temporal.make root_eid (Docstore.ts_of_version d (b + 1)) in
  List.iter
    (fun strategy ->
      (match Lifetime.cre_time_bound db ~strategy teid with
       | Some (Lifetime.At_or_before t) ->
         Alcotest.(check string) "bound is the first retained instant"
           (Timestamp.to_string (Docstore.ts_of_version d b))
           (Timestamp.to_string t)
       | Some (Lifetime.Exact _) ->
         Alcotest.fail "vacuumed creation must not be reported exact"
       | None -> Alcotest.fail "root element exists");
      Alcotest.(check (option string)) "cre_time collapses to the bound"
        (Some (Timestamp.to_string (Docstore.ts_of_version d b)))
        (Option.map Timestamp.to_string (Lifetime.cre_time db ~strategy teid)))
    [ `Traverse; `Index ]

let test_document_time_pruned () =
  let config =
    { Config.default with document_time_path = Some "//meta/published" }
  in
  let article published body =
    parse
      (Printf.sprintf
         "<article><meta><published>%s</published></meta><body>%s</body></article>"
         published body)
  in
  let db = Db.create ~config () in
  ignore
    (Db.insert_document db ~url:"n" ~ts:(op_ts 0) (article "01/05/2001" "a"));
  ignore
    (Db.update_document db ~url:"n" ~ts:(op_ts 1) (article "02/05/2001" "b"));
  ignore
    (Db.update_document db ~url:"n" ~ts:(op_ts 2) (article "03/05/2001" "c"));
  let report = Db.vacuum ~retention:(keep_last 1) db in
  Alcotest.(check int) "dtime rows tombstoned" 2 report.Db.vr_dtime_pruned;
  let remaining =
    List.map
      (fun (dt, doc, v) -> (Timestamp.to_string dt, doc, v))
      (Db.find_by_document_time db ~t1:Timestamp.minus_infinity
         ~t2:Timestamp.plus_infinity)
  in
  Alcotest.(check (list (triple string int int)))
    "only the retained version's document time remains"
    [ ("03/05/2001", 0, 2) ] remaining

(* --- the operator differential ------------------------------------------ *)

type op = Ins of string * Xml.t | Upd of string * Xml.t | Del of string

let interleave a b =
  let rec go acc = function
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys -> go (y :: x :: acc) (xs, ys)
  in
  go [] (a, b)

let replay config ops =
  let db = Db.create ~config () in
  List.iteri
    (fun i op ->
      match op with
      | Ins (u, x) -> ignore (Db.insert_document db ~url:u ~ts:(op_ts i) x)
      | Upd (u, x) -> ignore (Db.update_document db ~url:u ~ts:(op_ts i) x)
      | Del u -> Db.delete_document db ~url:u ~ts:(op_ts i) ())
    ops;
  db

let patterns =
  lazy
    [
      Pattern.of_path_exn "//name";
      Pattern.of_path_exn "//item";
      Pattern.of_path_exn ~value:"pizza" "//name";
    ]

let sorted_teids db bindings =
  List.sort String.compare
    (List.map Eid.Temporal.to_string (Scan.to_teids db bindings))

(* A binding list reduced to the part valid at or after [from]: each
   validity interval intersected with [from, +inf), empty drops.  Oracle
   and vacuumed database must produce identical reductions. *)
let clipped_intervals db from bindings =
  List.sort String.compare
    (List.concat_map
       (fun b ->
         List.filter_map
           (fun iv ->
             match
               Interval.intersect iv
                 (Interval.make ~start:from ~stop:Timestamp.plus_infinity)
             with
             | None -> None
             | Some clipped ->
               Some
                 (Printf.sprintf "%d %s %s" b.Scan.b_doc
                    (Txq_vxml.Xidpath.to_string b.Scan.b_path)
                    (Interval.to_string clipped)))
           (Scan.binding_intervals db b))
       bindings)

let check_doc_equal ~what oracle subject id =
  let d_o = Db.doc oracle id and d_s = Db.doc subject id in
  let b = Docstore.first_version d_s in
  let n = Docstore.version_count d_s in
  if Docstore.version_count d_o <> n then
    QCheck.Test.fail_reportf "%s: doc %d version_count changed" what id;
  for v = b to n - 1 do
    if
      Timestamp.compare
        (Docstore.ts_of_version d_o v)
        (Docstore.ts_of_version d_s v)
      <> 0
    then QCheck.Test.fail_reportf "%s: doc %d v%d timestamp moved" what id v;
    let x_o = Print.to_string (Vnode.to_xml (Db.reconstruct oracle id v)) in
    let x_s = Print.to_string (Vnode.to_xml (Db.reconstruct subject id v)) in
    if not (String.equal x_o x_s) then
      QCheck.Test.fail_reportf "%s: doc %d v%d reconstructs differently" what
        id v
  done;
  (* DocHistory / ElementHistory restricted to the retained window *)
  let t1 = Docstore.ts_of_version d_s b and t2 = Timestamp.plus_infinity in
  let hist db =
    List.map
      (fun dv ->
        Printf.sprintf "v%d %s" dv.History.dv_version
          (Interval.to_string dv.History.dv_interval))
      (History.doc_history db id ~t1 ~t2)
  in
  if hist oracle <> hist subject then
    QCheck.Test.fail_reportf "%s: doc %d DocHistory differs" what id;
  let root = Eid.make ~doc:id ~xid:(Vnode.xid (Docstore.current d_s)) in
  let ehist db =
    List.map
      (fun ev ->
        Printf.sprintf "v%d %s %s" ev.History.ev_version
          (Interval.to_string ev.History.ev_interval)
          (Print.to_string (Vnode.to_xml ev.History.ev_tree)))
      (History.element_history db root ~t1 ~t2 ())
  in
  if ehist oracle <> ehist subject then
    QCheck.Test.fail_reportf "%s: doc %d ElementHistory differs" what id

let check_lifetimes ~what oracle subject id =
  let d_s = Db.doc subject id in
  let b = Docstore.first_version d_s in
  let base_ts = Docstore.ts_of_version d_s b in
  for v = b to Docstore.version_count d_s - 1 do
    let tree = Db.reconstruct subject id v in
    let vts = Docstore.ts_of_version d_s v in
    List.iter
      (fun xid ->
        let teid = Eid.Temporal.make (Eid.make ~doc:id ~xid) vts in
        let ct strategy db = Lifetime.cre_time db ~strategy teid in
        let expected =
          match ct `Traverse oracle with
          | None -> None
          | Some t when Timestamp.(t <= base_ts) && b > 0 -> Some base_ts
          | Some t -> Some t
        in
        List.iter
          (fun strategy ->
            let got = ct strategy subject in
            if
              Option.map Timestamp.to_seconds got
              <> Option.map Timestamp.to_seconds expected
            then
              QCheck.Test.fail_reportf
                "%s: doc %d v%d xid %d CreTime differs from clamped oracle"
                what id v (Txq_vxml.Xid.to_int xid))
          [ `Traverse; `Index ];
        let dt strategy db = Lifetime.del_time db ~strategy teid in
        let d_oracle = dt `Traverse oracle in
        List.iter
          (fun strategy ->
            if
              Option.map Timestamp.to_seconds (dt strategy subject)
              <> Option.map Timestamp.to_seconds d_oracle
            then
              QCheck.Test.fail_reportf
                "%s: doc %d v%d xid %d DelTime differs" what id v
                (Txq_vxml.Xid.to_int xid))
          [ `Traverse; `Index ])
      (Vnode.xids tree)
  done

let prop_vacuum_differential =
  let arb =
    QCheck.quad
      (Gen_xml.arb_history ~max_versions:5)
      (Gen_xml.arb_history ~max_versions:5)
      (QCheck.int_range 0 14)
      (QCheck.option (QCheck.int_range 1 5))
  in
  QCheck.Test.make ~count:30
    ~name:"vacuumed operators = oracle on the retained window" arb
    (fun ((a0, asuccs), (b0, bsuccs), h, k) ->
      let config = { Config.default with fti_mode = Config.Fti_both } in
      let ops =
        Ins ("a", a0) :: Ins ("b", b0)
        :: interleave
             (List.map (fun x -> Upd ("a", x)) asuccs)
             (List.map (fun x -> Upd ("b", x)) bsuccs)
        @ (if h land 1 = 1 then [ Del "b" ] else [])
      in
      let n_ops = List.length ops in
      let oracle = replay config ops in
      let subject = replay config ops in
      let retention =
        {
          Config.keep_newer_than = Some (op_ts h);
          keep_versions = k;
        }
      in
      ignore (Db.vacuum ~retention subject : Db.vacuum_report);
      (match Db.verify subject with
       | Ok _ -> ()
       | Error errs ->
         QCheck.Test.fail_reportf "verify after vacuum: %s"
           (String.concat "; " errs));
      let surviving = Db.doc_ids subject in
      if not (List.for_all (fun id -> List.mem id (Db.doc_ids oracle)) surviving)
      then QCheck.Test.fail_reportf "vacuum invented a document";
      (* first instant from which every surviving chain is complete and
         every dropped document is already dead *)
      let safe_from =
        List.fold_left
          (fun acc id ->
            let d = Db.doc oracle id in
            let t =
              if List.mem id surviving then
                Docstore.ts_of_version (Db.doc subject id)
                  (Docstore.first_version (Db.doc subject id))
              else
                match Docstore.deleted_at d with
                | Some t -> t
                | None ->
                  QCheck.Test.fail_reportf "vacuum dropped a live document"
            in
            if Timestamp.(t > acc) then t else acc)
          Timestamp.minus_infinity (Db.doc_ids oracle)
      in
      List.iter (fun id -> check_doc_equal ~what:"diff" oracle subject id)
        surviving;
      List.iter (fun id -> check_lifetimes ~what:"diff" oracle subject id)
        surviving;
      List.iter
        (fun p ->
          (* snapshot scans at every retained instant *)
          for i = 0 to n_ops do
            let t = op_ts i in
            if Timestamp.(t >= safe_from) then
              if
                sorted_teids oracle (Scan.tpattern_scan oracle p t)
                <> sorted_teids subject (Scan.tpattern_scan subject p t)
              then
                QCheck.Test.fail_reportf "TPatternScan @%s differs"
                  (Timestamp.to_string t)
          done;
          (* the all-versions join, clipped to the retained window *)
          if
            clipped_intervals oracle safe_from (Scan.tpattern_scan_all oracle p)
            <> clipped_intervals subject safe_from
                 (Scan.tpattern_scan_all subject p)
          then QCheck.Test.fail_reportf "TPatternScanAll differs")
        (Lazy.force patterns);
      (* the temporal algebra: TExcept of two pattern scans on the
         vacuumed store vs the per-instant oracle on the unvacuumed one,
         both clipped to the retained window *)
      let alg =
        Txq_algebra.Algebra.(
          Set
            ( Except,
              Scan
                { l_kind = Collection; l_url = "*"; l_path = "//name";
                  l_word = None },
              Scan
                { l_kind = Doc; l_url = "b"; l_path = "//name";
                  l_word = Some "pizza" } ))
      in
      let tl_s = Txq_algebra.Timeline.of_db subject in
      let tl_o = Txq_algebra.Timeline.of_db oracle in
      if
        Txq_algebra.Relation.render ~clip_from:safe_from tl_s
          (Txq_algebra.Algebra.eval subject tl_s alg)
        <> Txq_algebra.Relation.render ~clip_from:safe_from tl_o
             (Txq_algebra.Oracle.eval oracle tl_o alg)
      then QCheck.Test.fail_reportf "algebra TExcept differs after vacuum";
      true)

let () =
  Alcotest.run "vacuum"
    [
      ( "unit",
        [
          Alcotest.test_case "keep-last-N squashes the prefix" `Quick
            test_keep_versions_squash;
          Alcotest.test_case "horizon drops dead documents" `Quick
            test_horizon_drops_dead_doc;
          Alcotest.test_case "vacuum is idempotent" `Quick test_vacuum_idempotent;
          Alcotest.test_case "current version always survives" `Quick
            test_current_always_survives;
          Alcotest.test_case "CreTime reports the truncated epoch honestly"
            `Quick test_cretime_truncated_epoch;
          Alcotest.test_case "document-time rows pruned" `Quick
            test_document_time_pruned;
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_vacuum_differential ] );
    ]
